// Package obs is the engine's live observability layer: a per-core
// metrics registry the serving hot path records into without locks or
// allocations, plus a snapshot reader that merges the per-core state on
// demand for the stats wire op, the HTTP metrics endpoint, and the
// operator tools.
//
// The concurrency protocol is single-writer: every Counter and Hist cell
// belongs to exactly one goroutine (its core's loop), which updates it
// with a plain load-add-store on an atomic word — no read-modify-write,
// so recording costs a couple of uncontended cache hits. Readers only
// ever Load, so a snapshot taken mid-update sees each word either before
// or after an increment (never torn, race-detector clean) and the merge
// is approximate only in the sense that it is a moment-in-time sample of
// a moving system. Counters whose writers are not unique (the per-group
// GC cleaners) use real atomic adds instead; they are far off the hot
// path.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"flatstore/internal/stats"
)

// Op kinds, the latency/count axis of the per-core metrics. They are a
// dense enum (not rpc op codes) so they can index fixed arrays.
const (
	KindPut = iota
	KindGet
	KindDelete
	KindScan
	NumOps
)

// KindName names an op kind for rendering.
func KindName(k int) string {
	switch k {
	case KindPut:
		return "put"
	case KindGet:
		return "get"
	case KindDelete:
		return "delete"
	case KindScan:
		return "scan"
	}
	return "unknown"
}

// Counter is a single-writer counter: the owning core Adds with a plain
// load+store (no RMW), readers Load. Do not share one Counter between
// writers.
type Counter struct{ v atomic.Uint64 }

// Add increments by n (owner only).
func (c *Counter) Add(n uint64) { c.v.Store(c.v.Load() + n) }

// Load reads the counter (any goroutine).
func (c *Counter) Load() uint64 { return c.v.Load() }

// Hist is a single-writer histogram with the exact cell layout of
// stats.Histogram, plus exact running moments so snapshot sums are not
// quantized to bucket representatives (the metrics e2e invariants depend
// on exact sums).
type Hist struct {
	cells [64][16]atomic.Uint64
	count atomic.Uint64
	sum   atomic.Int64
	min   atomic.Int64
	max   atomic.Int64
}

func (h *Hist) init() { h.min.Store(math.MaxInt64) }

// Record adds a sample (owner only).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	b, s := stats.BucketOf(v)
	cell := &h.cells[b][s]
	cell.Store(cell.Load() + 1)
	h.count.Store(h.count.Load() + 1)
	h.sum.Store(h.sum.Load() + v)
	if v < h.min.Load() {
		h.min.Store(v)
	}
	if v > h.max.Load() {
		h.max.Store(v)
	}
}

// snapshotInto folds the histogram's current state into a cell array and
// moment accumulators (reader side).
func (h *Hist) snapshotInto(cells *[64][16]uint64, count *uint64, sum, min, max *int64) {
	for b := range h.cells {
		for s := range h.cells[b] {
			cells[b][s] += h.cells[b][s].Load()
		}
	}
	n := h.count.Load()
	*count += n
	*sum += h.sum.Load()
	if n > 0 {
		if v := h.min.Load(); v < *min {
			*min = v
		}
		if v := h.max.Load(); v > *max {
			*max = v
		}
	}
}

// mergeHists snapshots one Hist per core into a single stats.Histogram.
func mergeHists(pick func(*CoreMetrics) *Hist, cores []*CoreMetrics) *stats.Histogram {
	var cells [64][16]uint64
	var count uint64
	var sum int64
	min, max := int64(math.MaxInt64), int64(0)
	for _, cm := range cores {
		pick(cm).snapshotInto(&cells, &count, &sum, &min, &max)
	}
	return stats.Restore(&cells, count, sum, min, max)
}

// slowRingSize is the per-core slow-op trace capacity. A fixed array:
// pushing overwrites the oldest entry and never allocates.
const slowRingSize = 64

// SlowOp is one traced slow request: per-stage timestamps of the §3.2 Put
// pipeline (enqueue → batch-seal → persist → index-update → respond).
// Start is nanoseconds since the registry's base; the stage fields are
// offsets from Start (0 when the stage does not apply — reads have no
// seal/persist). Respond marks when the response was enqueued for
// transmission, which is also the op's total latency.
type SlowOp struct {
	Core  int32
	Op    int32 // Kind* enum
	Key   uint64
	Start int64 // ns since registry base (enqueue)
	Seal  int64 // ns from Start: leader collected the batch
	Flush int64 // ns from Start: batch durable in the OpLog
	Index int64 // ns from Start: volatile index updated
	Total int64 // ns from Start: response enqueued
}

// slowRing holds the most recent slow ops of one core. The mutex is taken
// only when a slow op fires (rare by construction: the threshold selects
// outliers) and by the snapshot reader.
type slowRing struct {
	mu  sync.Mutex
	buf [slowRingSize]SlowOp
	n   uint64 // total pushed
}

func (r *slowRing) push(s SlowOp) {
	r.mu.Lock()
	r.buf[r.n%slowRingSize] = s
	r.n++
	r.mu.Unlock()
}

// snapshot appends the ring's contents, oldest first, onto into.
func (r *slowRing) snapshot(into []SlowOp) []SlowOp {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	start := uint64(0)
	if n > slowRingSize {
		start = n - slowRingSize
	}
	for i := start; i < n; i++ {
		into = append(into, r.buf[i%slowRingSize])
	}
	return into
}

// CoreMetrics is one core's private metric block. Only the owning core
// writes it (the single-writer protocol above); the trailing pad keeps a
// neighbouring allocation from sharing its last cacheline.
type CoreMetrics struct {
	OpCount [NumOps]Counter // responses by kind (incl. errors)
	OpErr   [NumOps]Counter // non-OK responses by kind
	OpLat   [NumOps]Hist    // latency by kind, ns

	BatchSize   Hist // entries per g-persist batch this core led
	BatchBytes  Hist // persisted bytes per batch (incl. trailer + pad)
	LeadBatches Counter
	OwnOps      Counter // batch entries this core both owned and led
	StolenOps   Counter // batch entries this core led for other cores
	FollowedOps Counter // own entries persisted by another core's batch
	LogBytes    Counter // OpLog bytes appended by batches this core led
	FlushUnits  Counter // 256 B flush units those bytes occupied

	slow slowRing

	_ [64]byte
}

// NoteOp records one completed request: count, error count, latency.
func (m *CoreMetrics) NoteOp(kind int, ok bool, latNs int64) {
	m.OpCount[kind].Add(1)
	if !ok {
		m.OpErr[kind].Add(1)
	}
	m.OpLat[kind].Record(latNs)
}

// NoteSlow pushes a slow-op trace into the core's ring.
func (m *CoreMetrics) NoteSlow(s SlowOp) { m.slow.push(s) }

// FlushUnitSize is the persist granularity batch bytes are accounted in
// (the XPLine of the paper's PM media: flushing 1 byte costs 256).
const FlushUnitSize = 256

// NoteBatch records one led g-persist batch: size in entries, persisted
// bytes, and the own/stolen split.
func (m *CoreMetrics) NoteBatch(entries, ownEntries int, bytes int64) {
	m.LeadBatches.Add(1)
	m.BatchSize.Record(int64(entries))
	m.BatchBytes.Record(bytes)
	m.OwnOps.Add(uint64(ownEntries))
	m.StolenOps.Add(uint64(entries - ownEntries))
	m.LogBytes.Add(uint64(bytes))
	m.FlushUnits.Add(uint64((bytes + FlushUnitSize - 1) / FlushUnitSize))
}

// Registry is one store's metric root: a CoreMetrics block per core, the
// multi-writer GC counters, and the monotonic clock every timestamp is
// relative to.
type Registry struct {
	base       time.Time
	slowThresh int64 // ns; 0 disables slow-op tracing
	cores      []*CoreMetrics

	// GC counters: multiple cleaners (one per HB group) write these, so
	// they are real atomics, not single-writer counters.
	gcCleaned   atomic.Uint64
	gcRelocated atomic.Uint64
	gcDropped   atomic.Uint64
}

// NewRegistry creates a registry for ncores cores. slowThresh is the
// latency at or beyond which an op is traced into its core's slow ring
// (0: tracing off).
func NewRegistry(ncores int, slowThresh time.Duration) *Registry {
	r := &Registry{base: time.Now(), slowThresh: slowThresh.Nanoseconds(), cores: make([]*CoreMetrics, ncores)}
	for i := range r.cores {
		cm := &CoreMetrics{}
		for k := 0; k < NumOps; k++ {
			cm.OpLat[k].init()
		}
		cm.BatchSize.init()
		cm.BatchBytes.init()
		r.cores[i] = cm
	}
	return r
}

// Now is the registry's monotonic clock: nanoseconds since the registry
// was created. Allocation-free (time.Since reads the monotonic clock).
func (r *Registry) Now() int64 { return int64(time.Since(r.base)) }

// SlowThreshold returns the slow-op tracing threshold in ns (0: off).
func (r *Registry) SlowThreshold() int64 { return r.slowThresh }

// Core returns core i's metric block.
func (r *Registry) Core(i int) *CoreMetrics { return r.cores[i] }

// NoteGC accumulates one cleaner pass's effects (any cleaner goroutine).
func (r *Registry) NoteGC(cleaned, relocated, dropped uint64) {
	r.gcCleaned.Add(cleaned)
	r.gcRelocated.Add(relocated)
	r.gcDropped.Add(dropped)
}

// OpSnap is one op kind's merged view.
type OpSnap struct {
	Count   uint64
	Errors  uint64
	Latency *stats.Histogram // ns
}

// ClassOcc is one allocator size class's occupancy.
type ClassOcc struct {
	Class      int // block size in bytes
	Chunks     uint64
	UsedBlocks uint64
	CapBlocks  uint64
}

// GroupSnap mirrors batch.GroupStats for the wire.
type GroupSnap struct {
	Batches uint64
	Stolen  uint64
	Leads   uint64
}

// NetSnap merges the transport counters: the FlatRPC layer's and (when
// serving TCP) the TCP front end's.
type NetSnap struct {
	QueuePairs  uint64
	MMIOs       uint64
	Delegations uint64
	Requests    uint64
	Responses   uint64
	Dropped     uint64
	Shed        uint64
	DedupHits   uint64
	BadFrames   uint64
	InFlight    int64

	// Pipelined-protocol counters (TCP front end): multi-op frames, read
	// coalescing, response-flush amortization, and the in-flight
	// high-water mark (the pipelining depth actually reached).
	BatchFrames     uint64
	BatchOps        uint64
	FramesCoalesced uint64
	RespFlushes     uint64
	RespWritten     uint64
	InFlightPeak    int64
}

// Replication roles as rendered in snapshots.
const (
	ReplRoleNone     = 0 // replication not configured
	ReplRolePrimary  = 1
	ReplRoleFollower = 2
)

// ReplRoleName names a replication role for rendering.
func ReplRoleName(r uint8) string {
	switch r {
	case ReplRolePrimary:
		return "primary"
	case ReplRoleFollower:
		return "follower"
	}
	return "none"
}

// ReplSnap is the replication controller's view: role, epoch, stream
// positions, and the ship/apply counters. Filled by the repl node when
// one is attached; zero otherwise.
type ReplSnap struct {
	Role       uint8  // ReplRole*
	Epoch      uint64 // current fencing epoch
	TailPos    uint64 // newest sealed batch position (primary) / highest seen
	AppliedPos uint64 // newest batch applied locally (follower) or acked tail
	Followers  uint64 // connected followers (primary)
	LagBatches uint64 // tail - slowest connected follower ack (primary), or
	// tail - applied (follower)
	LagBytes uint64 // same lag measured in stream bytes (history window)

	BatchesShipped  uint64 // batches entered into the stream (primary)
	BytesShipped    uint64 // encoded stream bytes entered (primary)
	BatchesApplied  uint64 // batches applied from the stream (follower)
	EntriesApplied  uint64 // entries applied from the stream (follower)
	SnapshotsServed uint64 // bootstrap snapshots served (primary)
	SnapshotsLoaded uint64 // bootstrap snapshots applied (follower)
	SyncTimeouts    uint64 // acks released by timeout instead of follower ack
	Demotions       uint64 // times this node fenced itself (saw a higher epoch)

	PrimaryAddr string // serve address of the known primary ("" if unknown)
}

// ShardSnap describes this node's place in a sharded cluster: which
// shard it owns, how many shards the map has, the map version routing
// is keyed on, and how many misrouted ops it bounced. Zero (Configured
// false) when the server runs unsharded.
type ShardSnap struct {
	Configured bool
	ID         int64  // this node's shard ID
	Count      uint64 // shards in the map
	MapVersion uint64 // membership version routing is a pure function of
	WrongShard uint64 // StatusWrongShard redirects sent (map drift observed)
}

// TierSnap is the cold-tier view: segment/record occupancy plus the
// demotion/promotion and bloom-filter counters. Zero (Enabled false)
// when the store runs without a tier directory.
type TierSnap struct {
	Enabled         bool
	Segments        uint64 // live segment files
	Records         uint64 // records across live segments
	DeadRecords     uint64 // records marked dead (compaction fuel)
	Bytes           uint64 // bytes across live segment files
	Reads           uint64 // record preads served
	BloomFiltered   uint64 // lookups answered "absent" without touching disk
	SegmentsWritten uint64 // segments ever written (demotion + compaction)
	Compactions     uint64 // compaction passes completed
	Demoted         uint64 // records demoted PM → tier
	Promoted        uint64 // records promoted tier → PM on access
	CorruptReads    uint64 // cold reads that failed closed (CRC/decode)
	Quarantined     uint64 // segments quarantined at open
}

// Snapshot is a merged moment-in-time view of the whole registry, plus
// the store-level state (keys, allocator, integrity, groups, transport)
// the store fills in. It is plain data and travels over the stats wire
// op.
type Snapshot struct {
	UptimeNs int64
	Cores    int

	Ops             [NumOps]OpSnap
	BatchSize       *stats.Histogram
	BatchBytes      *stats.Histogram
	LeadBatches     uint64
	OwnOps          uint64
	StolenOps       uint64
	FollowedOps     uint64
	LogBytes        uint64
	FlushUnits      uint64
	GCCleaned       uint64
	GCRelocated     uint64
	GCDropped       uint64
	Keys            uint64
	FreeChunks      uint64
	RawChunks       uint64
	HugeChunks      uint64
	Classes         []ClassOcc
	Groups          []GroupSnap
	Integrity       stats.Integrity
	Net             NetSnap
	Repl            ReplSnap
	Shard           ShardSnap
	Tier            TierSnap
	SlowThresholdNs int64
	SlowOps         []SlowOp // oldest first, merged across cores
}

// Snapshot merges the per-core metric blocks. All allocation happens
// here, on the reader side; the recording side never allocates.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		UptimeNs:        r.Now(),
		Cores:           len(r.cores),
		SlowThresholdNs: r.slowThresh,
		GCCleaned:       r.gcCleaned.Load(),
		GCRelocated:     r.gcRelocated.Load(),
		GCDropped:       r.gcDropped.Load(),
	}
	for k := 0; k < NumOps; k++ {
		k := k // capture per-iteration for the closure below
		for _, cm := range r.cores {
			s.Ops[k].Count += cm.OpCount[k].Load()
			s.Ops[k].Errors += cm.OpErr[k].Load()
		}
		s.Ops[k].Latency = mergeHists(func(cm *CoreMetrics) *Hist { return &cm.OpLat[k] }, r.cores)
	}
	s.BatchSize = mergeHists(func(cm *CoreMetrics) *Hist { return &cm.BatchSize }, r.cores)
	s.BatchBytes = mergeHists(func(cm *CoreMetrics) *Hist { return &cm.BatchBytes }, r.cores)
	for _, cm := range r.cores {
		s.LeadBatches += cm.LeadBatches.Load()
		s.OwnOps += cm.OwnOps.Load()
		s.StolenOps += cm.StolenOps.Load()
		s.FollowedOps += cm.FollowedOps.Load()
		s.LogBytes += cm.LogBytes.Load()
		s.FlushUnits += cm.FlushUnits.Load()
		s.SlowOps = cm.slow.snapshot(s.SlowOps)
	}
	return s
}

package obs

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"flatstore/internal/stats"
)

func TestRegistryMerge(t *testing.T) {
	r := NewRegistry(3, 0)
	// Concurrent single-writer recording: one goroutine per core block.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := r.Core(i)
			for j := 0; j < 100; j++ {
				m.NoteOp(KindPut, true, int64(1000*(i+1)))
				m.NoteOp(KindGet, j%10 == 0, 500)
			}
			m.NoteBatch(4, 3, 1024)
		}(i)
	}
	wg.Wait()
	r.NoteGC(2, 10, 5)

	s := r.Snapshot()
	if s.Cores != 3 {
		t.Fatalf("cores = %d", s.Cores)
	}
	if s.Ops[KindPut].Count != 300 || s.Ops[KindPut].Errors != 0 {
		t.Fatalf("put count/errors = %d/%d", s.Ops[KindPut].Count, s.Ops[KindPut].Errors)
	}
	if s.Ops[KindGet].Count != 300 || s.Ops[KindGet].Errors != 270 {
		t.Fatalf("get count/errors = %d/%d", s.Ops[KindGet].Count, s.Ops[KindGet].Errors)
	}
	if got := s.Ops[KindPut].Latency.Count(); got != 300 {
		t.Fatalf("put latency samples = %d", got)
	}
	// Exact moments survive the merge (not quantized to buckets).
	if got := stats.Sum(s.Ops[KindPut].Latency); got != 100*(1000+2000+3000) {
		t.Fatalf("put latency sum = %d", got)
	}
	if s.Ops[KindPut].Latency.Min() != 1000 || s.Ops[KindPut].Latency.Max() != 3000 {
		t.Fatalf("put latency min/max = %d/%d",
			s.Ops[KindPut].Latency.Min(), s.Ops[KindPut].Latency.Max())
	}
	if s.LeadBatches != 3 || s.OwnOps != 9 || s.StolenOps != 3 {
		t.Fatalf("batches/own/stolen = %d/%d/%d", s.LeadBatches, s.OwnOps, s.StolenOps)
	}
	if got := stats.Sum(s.BatchSize); got != 12 {
		t.Fatalf("batch size sum = %d", got)
	}
	if s.LogBytes != 3*1024 || s.FlushUnits != 3*4 {
		t.Fatalf("log bytes/flush units = %d/%d", s.LogBytes, s.FlushUnits)
	}
	if s.GCCleaned != 2 || s.GCRelocated != 10 || s.GCDropped != 5 {
		t.Fatalf("gc = %d/%d/%d", s.GCCleaned, s.GCRelocated, s.GCDropped)
	}
}

func TestSlowRingOverwritesOldest(t *testing.T) {
	r := NewRegistry(1, time.Microsecond)
	if r.SlowThreshold() != 1000 {
		t.Fatalf("threshold = %d", r.SlowThreshold())
	}
	m := r.Core(0)
	for i := 0; i < slowRingSize+10; i++ {
		m.NoteSlow(SlowOp{Core: 0, Op: KindPut, Key: uint64(i), Start: int64(i)})
	}
	s := r.Snapshot()
	if len(s.SlowOps) != slowRingSize {
		t.Fatalf("traced %d slow ops, want %d", len(s.SlowOps), slowRingSize)
	}
	// Oldest first, and the first 10 pushes were overwritten.
	if s.SlowOps[0].Key != 10 || s.SlowOps[slowRingSize-1].Key != slowRingSize+9 {
		t.Fatalf("ring order wrong: first key %d, last key %d",
			s.SlowOps[0].Key, s.SlowOps[slowRingSize-1].Key)
	}
}

// buildSnapshot fills every field so the roundtrip test covers the whole
// wire format.
func buildSnapshot() Snapshot {
	r := NewRegistry(2, 5*time.Millisecond)
	for i := 0; i < 2; i++ {
		m := r.Core(i)
		m.NoteOp(KindPut, true, 1500)
		m.NoteOp(KindGet, false, 900)
		m.NoteOp(KindDelete, true, 700)
		m.NoteOp(KindScan, true, 12000)
		m.NoteBatch(3, 2, 768)
		m.NoteSlow(SlowOp{Core: int32(i), Op: KindPut, Key: 7,
			Start: 100, Seal: 10, Flush: 20, Index: 30, Total: 40})
	}
	r.NoteGC(1, 2, 3)
	s := r.Snapshot()
	s.Keys = 42
	s.FreeChunks, s.RawChunks, s.HugeChunks = 5, 6, 7
	s.Classes = []ClassOcc{{Class: 256, Chunks: 2, UsedBlocks: 100, CapBlocks: 200}}
	s.Groups = []GroupSnap{{Batches: 9, Stolen: 8, Leads: 10}}
	s.Integrity = stats.Integrity{ScrubRuns: 1, ChecksumErrors: 2, Quarantined: 3}
	s.Net = NetSnap{QueuePairs: 1, MMIOs: 2, Delegations: 3, Requests: 4,
		Responses: 5, Dropped: 6, Shed: 7, DedupHits: 8, BadFrames: 9, InFlight: -1,
		BatchFrames: 10, BatchOps: 11, FramesCoalesced: 12,
		RespFlushes: 13, RespWritten: 14, InFlightPeak: 15}
	return s
}

func TestSnapshotMarshalRoundTrip(t *testing.T) {
	s := buildSnapshot()
	enc := s.Marshal()
	got, err := UnmarshalSnapshot(enc)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// Histograms don't compare with ==; check them via their digests and
	// the rest of the struct via a View comparison.
	if !reflect.DeepEqual(got.View(), s.View()) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got.View(), s.View())
	}
	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(enc); n++ {
		if _, err := UnmarshalSnapshot(enc[:n]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
	}
}

func TestPrometheusRendering(t *testing.T) {
	s := buildSnapshot()
	h := Handler(func() Snapshot { return s })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"flatstore_ops_total{op=\"put\"} 2\n",
		"flatstore_ops_total{op=\"get\"} 2\n",
		"flatstore_op_errors_total{op=\"get\"} 2\n",
		"flatstore_op_latency_seconds{op=\"put\",quantile=\"0.5\"}",
		"flatstore_op_latency_seconds_count{op=\"put\"} 2\n",
		"flatstore_batch_size_sum 6\n",
		"flatstore_batch_size_count 2\n",
		"flatstore_lead_batches_total 2\n",
		"flatstore_oplog_bytes_total 1536\n",
		"flatstore_gc_chunks_cleaned_total 1\n",
		"flatstore_keys 42\n",
		"flatstore_quarantined_keys 3\n",
		"flatstore_net_inflight -1\n",
		"flatstore_alloc_class_used_blocks{class=\"256\"} 100\n",
		"flatstore_hb_group_batches_total{group=\"0\"} 9\n",
		"flatstore_slow_ops_traced 2\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in rendering", want)
		}
	}
	// No label-less metric may render as name{} — that is invalid
	// exposition format.
	if strings.Contains(body, "{}") {
		t.Error("rendering contains invalid empty label set {}")
	}
}

package obs

import (
	"encoding/binary"
	"fmt"

	"flatstore/internal/stats"
)

// Wire format of a Snapshot (little-endian, fixed field order, versioned
// by the magic): the payload of the tcp stats op. Histograms use the
// sparse stats.AppendBinary encoding, so an idle store's snapshot is a
// few hundred bytes.
// OBS2 appended the pipelined-protocol Net counters; OBS3 appended the
// replication block; OBS4 appended the shard block; OBS5 appended the
// cold-tier block. An older peer is rejected rather than mis-decoded
// (fixed field order, no tags).
const snapMagic uint32 = 0x4F425335 // "OBS5"

// Marshal encodes the snapshot for the stats wire op.
func (s *Snapshot) Marshal() []byte {
	b := make([]byte, 0, 1024)
	b = binary.LittleEndian.AppendUint32(b, snapMagic)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.UptimeNs))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.Cores))
	for k := 0; k < NumOps; k++ {
		b = binary.LittleEndian.AppendUint64(b, s.Ops[k].Count)
		b = binary.LittleEndian.AppendUint64(b, s.Ops[k].Errors)
		b = s.Ops[k].Latency.AppendBinary(b)
	}
	b = s.BatchSize.AppendBinary(b)
	b = s.BatchBytes.AppendBinary(b)
	for _, w := range []uint64{
		s.LeadBatches, s.OwnOps, s.StolenOps, s.FollowedOps, s.LogBytes,
		s.FlushUnits, s.GCCleaned, s.GCRelocated, s.GCDropped, s.Keys,
		s.FreeChunks, s.RawChunks, s.HugeChunks,
	} {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Classes)))
	for _, c := range s.Classes {
		b = binary.LittleEndian.AppendUint32(b, uint32(c.Class))
		b = binary.LittleEndian.AppendUint64(b, c.Chunks)
		b = binary.LittleEndian.AppendUint64(b, c.UsedBlocks)
		b = binary.LittleEndian.AppendUint64(b, c.CapBlocks)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Groups)))
	for _, g := range s.Groups {
		b = binary.LittleEndian.AppendUint64(b, g.Batches)
		b = binary.LittleEndian.AppendUint64(b, g.Stolen)
		b = binary.LittleEndian.AppendUint64(b, g.Leads)
	}
	b = append(b, s.Integrity.Marshal()...)
	for _, w := range []uint64{
		s.Net.QueuePairs, s.Net.MMIOs, s.Net.Delegations, s.Net.Requests,
		s.Net.Responses, s.Net.Dropped, s.Net.Shed, s.Net.DedupHits,
		s.Net.BadFrames, uint64(s.Net.InFlight),
		s.Net.BatchFrames, s.Net.BatchOps, s.Net.FramesCoalesced,
		s.Net.RespFlushes, s.Net.RespWritten, uint64(s.Net.InFlightPeak),
	} {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(s.SlowThresholdNs))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.SlowOps)))
	for _, so := range s.SlowOps {
		b = binary.LittleEndian.AppendUint32(b, uint32(so.Core))
		b = binary.LittleEndian.AppendUint32(b, uint32(so.Op))
		b = binary.LittleEndian.AppendUint64(b, so.Key)
		for _, t := range []int64{so.Start, so.Seal, so.Flush, so.Index, so.Total} {
			b = binary.LittleEndian.AppendUint64(b, uint64(t))
		}
	}
	for _, w := range []uint64{
		uint64(s.Repl.Role), s.Repl.Epoch, s.Repl.TailPos, s.Repl.AppliedPos,
		s.Repl.Followers, s.Repl.LagBatches, s.Repl.LagBytes,
		s.Repl.BatchesShipped, s.Repl.BytesShipped, s.Repl.BatchesApplied,
		s.Repl.EntriesApplied, s.Repl.SnapshotsServed, s.Repl.SnapshotsLoaded,
		s.Repl.SyncTimeouts, s.Repl.Demotions,
	} {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Repl.PrimaryAddr)))
	b = append(b, s.Repl.PrimaryAddr...)
	var configured uint64
	if s.Shard.Configured {
		configured = 1
	}
	for _, w := range []uint64{
		configured, uint64(s.Shard.ID), s.Shard.Count, s.Shard.MapVersion,
		s.Shard.WrongShard,
	} {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	var tierEnabled uint64
	if s.Tier.Enabled {
		tierEnabled = 1
	}
	for _, w := range []uint64{
		tierEnabled, s.Tier.Segments, s.Tier.Records, s.Tier.DeadRecords,
		s.Tier.Bytes, s.Tier.Reads, s.Tier.BloomFiltered,
		s.Tier.SegmentsWritten, s.Tier.Compactions, s.Tier.Demoted,
		s.Tier.Promoted, s.Tier.CorruptReads, s.Tier.Quarantined,
	} {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// errShort is the shared truncation error of UnmarshalSnapshot.
var errShort = fmt.Errorf("obs: truncated snapshot payload")

// UnmarshalSnapshot decodes what Marshal produced.
func UnmarshalSnapshot(b []byte) (*Snapshot, error) {
	pos := 0
	need := func(n int) bool { return len(b)-pos >= n }
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(b[pos:]); pos += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(b[pos:]); pos += 8; return v }
	if !need(16) || u32() != snapMagic {
		return nil, fmt.Errorf("obs: not a snapshot payload")
	}
	s := &Snapshot{}
	s.UptimeNs = int64(u64())
	s.Cores = int(u32())
	hist := func() (*stats.Histogram, error) {
		h, n, err := stats.DecodeHistogram(b[pos:])
		pos += n
		return h, err
	}
	var err error
	for k := 0; k < NumOps; k++ {
		if !need(16) {
			return nil, errShort
		}
		s.Ops[k].Count = u64()
		s.Ops[k].Errors = u64()
		if s.Ops[k].Latency, err = hist(); err != nil {
			return nil, err
		}
	}
	if s.BatchSize, err = hist(); err != nil {
		return nil, err
	}
	if s.BatchBytes, err = hist(); err != nil {
		return nil, err
	}
	if !need(13 * 8) {
		return nil, errShort
	}
	for _, p := range []*uint64{
		&s.LeadBatches, &s.OwnOps, &s.StolenOps, &s.FollowedOps, &s.LogBytes,
		&s.FlushUnits, &s.GCCleaned, &s.GCRelocated, &s.GCDropped, &s.Keys,
		&s.FreeChunks, &s.RawChunks, &s.HugeChunks,
	} {
		*p = u64()
	}
	if !need(4) {
		return nil, errShort
	}
	n := int(u32())
	if n < 0 || !need(n*28) {
		return nil, errShort
	}
	for i := 0; i < n; i++ {
		c := ClassOcc{Class: int(u32())}
		c.Chunks, c.UsedBlocks, c.CapBlocks = u64(), u64(), u64()
		s.Classes = append(s.Classes, c)
	}
	if !need(4) {
		return nil, errShort
	}
	n = int(u32())
	if n < 0 || !need(n*24) {
		return nil, errShort
	}
	for i := 0; i < n; i++ {
		s.Groups = append(s.Groups, GroupSnap{Batches: u64(), Stolen: u64(), Leads: u64()})
	}
	if !need(stats.IntegritySize) {
		return nil, errShort
	}
	if s.Integrity, err = stats.UnmarshalIntegrity(b[pos : pos+stats.IntegritySize]); err != nil {
		return nil, err
	}
	pos += stats.IntegritySize
	if !need(16*8 + 8 + 4) {
		return nil, errShort
	}
	for _, p := range []*uint64{
		&s.Net.QueuePairs, &s.Net.MMIOs, &s.Net.Delegations, &s.Net.Requests,
		&s.Net.Responses, &s.Net.Dropped, &s.Net.Shed, &s.Net.DedupHits,
		&s.Net.BadFrames,
	} {
		*p = u64()
	}
	s.Net.InFlight = int64(u64())
	for _, p := range []*uint64{
		&s.Net.BatchFrames, &s.Net.BatchOps, &s.Net.FramesCoalesced,
		&s.Net.RespFlushes, &s.Net.RespWritten,
	} {
		*p = u64()
	}
	s.Net.InFlightPeak = int64(u64())
	s.SlowThresholdNs = int64(u64())
	n = int(u32())
	if n < 0 || !need(n*56) {
		return nil, errShort
	}
	for i := 0; i < n; i++ {
		so := SlowOp{Core: int32(u32()), Op: int32(u32()), Key: u64()}
		so.Start, so.Seal, so.Flush, so.Index, so.Total =
			int64(u64()), int64(u64()), int64(u64()), int64(u64()), int64(u64())
		s.SlowOps = append(s.SlowOps, so)
	}
	if !need(15*8 + 4) {
		return nil, errShort
	}
	s.Repl.Role = uint8(u64())
	for _, p := range []*uint64{
		&s.Repl.Epoch, &s.Repl.TailPos, &s.Repl.AppliedPos,
		&s.Repl.Followers, &s.Repl.LagBatches, &s.Repl.LagBytes,
		&s.Repl.BatchesShipped, &s.Repl.BytesShipped, &s.Repl.BatchesApplied,
		&s.Repl.EntriesApplied, &s.Repl.SnapshotsServed, &s.Repl.SnapshotsLoaded,
		&s.Repl.SyncTimeouts, &s.Repl.Demotions,
	} {
		*p = u64()
	}
	n = int(u32())
	if n < 0 || !need(n) {
		return nil, errShort
	}
	s.Repl.PrimaryAddr = string(b[pos : pos+n])
	pos += n
	if !need(5 * 8) {
		return nil, errShort
	}
	s.Shard.Configured = u64() != 0
	s.Shard.ID = int64(u64())
	s.Shard.Count = u64()
	s.Shard.MapVersion = u64()
	s.Shard.WrongShard = u64()
	if !need(13 * 8) {
		return nil, errShort
	}
	s.Tier.Enabled = u64() != 0
	for _, p := range []*uint64{
		&s.Tier.Segments, &s.Tier.Records, &s.Tier.DeadRecords,
		&s.Tier.Bytes, &s.Tier.Reads, &s.Tier.BloomFiltered,
		&s.Tier.SegmentsWritten, &s.Tier.Compactions, &s.Tier.Demoted,
		&s.Tier.Promoted, &s.Tier.CorruptReads, &s.Tier.Quarantined,
	} {
		*p = u64()
	}
	return s, nil
}

package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfBounds(t *testing.T) {
	z := NewZipf(1000, 0.99)
	for _, u := range []float64{0, 0.001, 0.25, 0.5, 0.9, 0.999999} {
		r := z.Next(u)
		if r >= 1000 {
			t.Fatalf("Next(%v) = %d out of range", u, r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With theta 0.99, the most popular ranks dominate.
	z := NewZipf(1_000_000, 0.99)
	g := New(Config{Seed: 1, Keys: 1_000_000, ZipfTheta: 0.99, ValueSize: 8, NoScramble: true})
	counts := map[uint64]int{}
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[g.NextKey()]++
	}
	top := counts[0]
	if top < n/50 {
		t.Errorf("rank 0 got %d of %d draws; zipf(0.99) should be far hotter", top, n)
	}
	// Top 10 ranks should cover a large share.
	sum := 0
	for r := uint64(0); r < 10; r++ {
		sum += counts[r]
	}
	if float64(sum)/n < 0.2 {
		t.Errorf("top-10 share = %.3f, want ≥ 0.2", float64(sum)/n)
	}
	_ = z
}

func TestZipfZetaApproximation(t *testing.T) {
	// The approximated zeta for large n must stay close to scaling the
	// exact prefix: compare against a direct (slow) sum for 2^21.
	n := uint64(zetaExact * 2)
	exact := 0.0
	for i := uint64(1); i <= n; i++ {
		exact += 1 / math.Pow(float64(i), 0.99)
	}
	approx := zeta(n, 0.99)
	if math.Abs(exact-approx)/exact > 0.01 {
		t.Errorf("zeta approx off by %.3f%%", 100*math.Abs(exact-approx)/exact)
	}
}

func TestUniformCoverage(t *testing.T) {
	g := New(Config{Seed: 2, Keys: 100, ValueSize: 8})
	seen := map[uint64]bool{}
	for i := 0; i < 10_000; i++ {
		k := g.NextKey()
		if k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Errorf("uniform covered only %d/100 keys", len(seen))
	}
}

func TestGetRatio(t *testing.T) {
	g := New(Config{Seed: 3, Keys: 1000, ValueSize: 8, GetRatio: 0.95})
	gets := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		if g.Next().Type == OpGet {
			gets++
		}
	}
	ratio := float64(gets) / n
	if ratio < 0.93 || ratio > 0.97 {
		t.Errorf("get ratio = %.3f, want ≈0.95", ratio)
	}
}

func TestDeterminism(t *testing.T) {
	a := New(Config{Seed: 7, Keys: 5000, ZipfTheta: 0.99, ValueSize: 64, GetRatio: 0.5})
	b := New(Config{Seed: 7, Keys: 5000, ZipfTheta: 0.99, ValueSize: 64, GetRatio: 0.5})
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestValuePayload(t *testing.T) {
	g := New(Config{Seed: 1, Keys: 10, ValueSize: 8})
	v := g.Value(100)
	if len(v) != 100 {
		t.Fatalf("Value(100) returned %d bytes", len(v))
	}
	big := g.Value(4 << 20)
	if len(big) != 4<<20 {
		t.Fatalf("Value growth failed: %d", len(big))
	}
}

func TestETCSizeDistribution(t *testing.T) {
	g := NewETC(11, 1_000_000, 0)
	tiny, small, large := 0, 0, 0
	const n = 50_000
	maxLarge := 0
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Type != OpPut {
			t.Fatal("getRatio 0 produced a Get")
		}
		switch {
		case op.ValueSize <= etcTinyMax:
			tiny++
		case op.ValueSize <= etcSmallMax:
			small++
		default:
			large++
			if op.ValueSize > maxLarge {
				maxLarge = op.ValueSize
			}
		}
		if op.ValueSize < 1 || op.ValueSize > etcLargeMax {
			t.Fatalf("value size %d out of range", op.ValueSize)
		}
	}
	// Requests: ~95% to the zipfian tiny+small region, ~5% large.
	if f := float64(large) / n; f < 0.03 || f > 0.08 {
		t.Errorf("large request fraction = %.3f, want ≈0.05", f)
	}
	if tiny == 0 || small == 0 {
		t.Error("tiny/small classes not exercised")
	}
	if maxLarge <= etcLargeMin {
		t.Error("large sizes show no variability")
	}
}

func TestETCSizeStablePerKey(t *testing.T) {
	g := NewETC(5, 10_000, 0)
	for k := uint64(0); k < 1000; k++ {
		if g.SizeOf(k) != g.SizeOf(k) {
			t.Fatal("SizeOf not deterministic")
		}
	}
}

func TestQuickZipfInRange(t *testing.T) {
	check := func(nRaw uint32, u float64) bool {
		n := uint64(nRaw%1_000_000) + 1
		u = math.Abs(u)
		u -= math.Floor(u)
		z := NewZipf(n, 0.99)
		return z.Next(u) < n
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

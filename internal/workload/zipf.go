// Package workload generates the request streams of the paper's
// evaluation (§5): YCSB-style uniform and zipfian key popularity over a
// configurable key space, fixed value sizes for the microbenchmarks, and
// the Facebook ETC pool's trimodal size distribution for the production
// workload. All generators are deterministic under a seed.
package workload

import "math"

// Zipf draws ranks 0..n-1 with P(rank) ∝ 1/(rank+1)^theta, using the
// Gray et al. transformation that YCSB's ZipfianGenerator implements.
// For very large n the harmonic normalizer is approximated by its
// integral tail, so construction stays O(min(n, zetaExact)).
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// zetaExact bounds the exactly-summed prefix of the harmonic series.
const zetaExact = 1 << 20

// NewZipf creates a zipfian distribution over [0, n) with skew theta
// (the paper uses YCSB's default 0.99).
func NewZipf(n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: zipf over empty range")
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zeta computes (or approximates, beyond zetaExact) the generalized
// harmonic number H_{n,theta}.
func zeta(n uint64, theta float64) float64 {
	m := n
	if m > zetaExact {
		m = zetaExact
	}
	sum := 0.0
	for i := uint64(1); i <= m; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > m {
		// Integral approximation of the tail: ∫ x^-θ dx over [m, n].
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(m), 1-theta)) / (1 - theta)
	}
	return sum
}

// Next maps a uniform u ∈ [0,1) to a zipfian rank (0 = most popular).
func (z *Zipf) Next(u float64) uint64 {
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// N returns the range size.
func (z *Zipf) N() uint64 { return z.n }

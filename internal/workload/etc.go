package workload

import "math/rand"

// Facebook ETC pool emulation (§5.2): a trimodal item-size distribution
// where, out of the key space, 40 % of keys are tiny (1–13 B), 55 % are
// small (14–300 B) and 5 % are large (>300 B). Popularity is zipfian
// (0.99) over the tiny+small keys — the strong skew of production pools —
// while large keys are chosen uniformly at random. Request sizes follow
// the key's class deterministically, so re-writes of a key keep its
// class.
const (
	etcTinyFrac  = 0.40
	etcSmallFrac = 0.55

	etcTinyMin, etcTinyMax   = 1, 13
	etcSmallMin, etcSmallMax = 14, 300
	etcLargeMin              = 301
	etcLargeMax              = 64 << 10

	// etcLargeReqFrac is the fraction of requests aimed at large keys.
	// The ETC characterization has large items dominating space but not
	// request count; 5 % keeps the stream write-bandwidth-realistic.
	etcLargeReqFrac = 0.05
)

// ETCGenerator produces the production workload.
type ETCGenerator struct {
	rng        *rand.Rand
	keys       uint64
	tinyKeys   uint64
	smallKeys  uint64
	largeKeys  uint64
	zipf       *Zipf // over tiny+small
	getRatio   float64
	valBuf     []byte
	sizeHasher uint64
}

// NewETC builds the ETC generator over the given key space.
func NewETC(seed int64, keys uint64, getRatio float64) *ETCGenerator {
	tiny := uint64(float64(keys) * etcTinyFrac)
	small := uint64(float64(keys) * etcSmallFrac)
	large := keys - tiny - small
	if large == 0 {
		large = 1
		small--
	}
	g := &ETCGenerator{
		rng:       rand.New(rand.NewSource(seed)),
		keys:      keys,
		tinyKeys:  tiny,
		smallKeys: small,
		largeKeys: large,
		zipf:      NewZipf(tiny+small, 0.99),
		getRatio:  getRatio,
		valBuf:    make([]byte, etcLargeMax),
	}
	for i := range g.valBuf {
		g.valBuf[i] = byte(i*197 + 31)
	}
	return g
}

// class returns 0 (tiny), 1 (small) or 2 (large) for a key.
func (g *ETCGenerator) class(key uint64) int {
	switch {
	case key < g.tinyKeys:
		return 0
	case key < g.tinyKeys+g.smallKeys:
		return 1
	default:
		return 2
	}
}

// SizeOf returns the deterministic value size of a key (stable across
// rewrites, derived from the key itself).
func (g *ETCGenerator) SizeOf(key uint64) int {
	h := key*0x2545f4914f6cdd1d + 0x9e3779b97f4a7c15
	h ^= h >> 33
	switch g.class(key) {
	case 0:
		return etcTinyMin + int(h%(etcTinyMax-etcTinyMin+1))
	case 1:
		return etcSmallMin + int(h%(etcSmallMax-etcSmallMin+1))
	default:
		// Heavy-tailed large sizes: a bounded Pareto-like tail gives
		// the "much higher variability" the characterization reports.
		span := float64(etcLargeMax - etcLargeMin)
		frac := float64(h%1000000) / 1000000
		size := etcLargeMin + int(span*frac*frac*frac)
		return size
	}
}

// NextKey draws a key: zipfian over tiny+small, uniform over large.
func (g *ETCGenerator) NextKey() uint64 {
	if g.rng.Float64() < etcLargeReqFrac {
		return g.tinyKeys + g.smallKeys + uint64(g.rng.Int63n(int64(g.largeKeys)))
	}
	rank := g.zipf.Next(g.rng.Float64())
	// Scramble rank→key within the tiny+small region so hot keys are
	// spread across both classes and all server cores.
	x := rank * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return x % (g.tinyKeys + g.smallKeys)
}

// Next draws the next request.
func (g *ETCGenerator) Next() Op {
	key := g.NextKey()
	if g.rng.Float64() < g.getRatio {
		return Op{Type: OpGet, Key: key}
	}
	return Op{Type: OpPut, Key: key, ValueSize: g.SizeOf(key)}
}

// Value returns a deterministic payload of the given size (shared
// buffer; copy to retain).
func (g *ETCGenerator) Value(size int) []byte { return g.valBuf[:size] }

package workload

import "math/rand"

// OpType is a request kind.
type OpType uint8

// Request kinds.
const (
	OpPut OpType = iota
	OpGet
	OpDelete
)

// Op is one generated request.
type Op struct {
	Type      OpType
	Key       uint64
	ValueSize int // meaningful for OpPut
}

// Generator produces a deterministic request stream.
type Generator struct {
	rng      *rand.Rand
	keys     uint64
	zipf     *Zipf // nil → uniform
	getRatio float64
	size     func(rng *rand.Rand, key uint64) int

	// scramble decorrelates zipf rank from key id, so hot keys spread
	// across server cores (YCSB's hashed key order).
	scramble bool

	valBuf []byte
}

// Config describes a workload.
type Config struct {
	Seed int64
	// Keys is the key-space size (the paper uses 192 M for YCSB).
	Keys uint64
	// ZipfTheta > 0 selects zipfian popularity with that skew
	// (0.99 in the paper); 0 selects uniform.
	ZipfTheta float64
	// GetRatio ∈ [0,1] is the fraction of Get requests; the rest are
	// Puts.
	GetRatio float64
	// ValueSize fixes the Put value size (YCSB microbenchmarks).
	ValueSize int
	// SizeFn, when set, overrides ValueSize (ETC's trimodal sizes).
	SizeFn func(rng *rand.Rand, key uint64) int
	// NoScramble keeps zipf rank == key id (for tests).
	NoScramble bool
}

// New builds a generator.
func New(cfg Config) *Generator {
	g := &Generator{
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		keys:     cfg.Keys,
		getRatio: cfg.GetRatio,
		scramble: !cfg.NoScramble,
		valBuf:   make([]byte, 1<<20),
	}
	if cfg.ZipfTheta > 0 {
		g.zipf = NewZipf(cfg.Keys, cfg.ZipfTheta)
	}
	if cfg.SizeFn != nil {
		g.size = cfg.SizeFn
	} else {
		sz := cfg.ValueSize
		g.size = func(*rand.Rand, uint64) int { return sz }
	}
	for i := range g.valBuf {
		g.valBuf[i] = byte(i*131 + 17)
	}
	return g
}

// scrambleKey maps a rank to a key id via an invertible mixer, keeping
// ids inside the key space by re-ranging.
func (g *Generator) scrambleKey(rank uint64) uint64 {
	if !g.scramble {
		return rank
	}
	x := rank * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return x % g.keys
}

// NextKey draws a key by the configured popularity.
func (g *Generator) NextKey() uint64 {
	if g.zipf != nil {
		return g.scrambleKey(g.zipf.Next(g.rng.Float64()))
	}
	return uint64(g.rng.Int63n(int64(g.keys)))
}

// Next draws the next request.
func (g *Generator) Next() Op {
	key := g.NextKey()
	if g.rng.Float64() < g.getRatio {
		return Op{Type: OpGet, Key: key}
	}
	return Op{Type: OpPut, Key: key, ValueSize: g.size(g.rng, key)}
}

// Value returns a deterministic payload of the given size. The slice is
// reused across calls; consumers must copy if they retain it (the engine
// copies on the Put path anyway).
func (g *Generator) Value(size int) []byte {
	for size > len(g.valBuf) {
		g.valBuf = append(g.valBuf, g.valBuf...)
	}
	return g.valBuf[:size]
}

// YCSB builds the paper's microbenchmark workload: fixed-size values,
// uniform (theta 0) or zipfian popularity, 8-byte keys out of a key
// space of `keys`.
func YCSB(seed int64, keys uint64, theta float64, valueSize int, getRatio float64) *Generator {
	return New(Config{Seed: seed, Keys: keys, ZipfTheta: theta, ValueSize: valueSize, GetRatio: getRatio})
}

// Package cluster is the sharding half of ROADMAP item 1: a
// consistent-hash shard map over the uint64 key space and a
// cluster-aware client that routes single operations to the owning
// shard group, splits multi-op frames by shard and issues the sub-
// batches concurrently over the pipelined TCP protocol, and fans Scan
// out to every shard with a streaming k-way merge over the ordered
// per-shard results.
//
// A shard group is one replication cluster (internal/repl): the map
// stores each group's candidate client addresses (primary + followers)
// and the per-group tcp.Client follows NotPrimary redirects within the
// group, so a shard surviving a failover stays reachable under the same
// shard ID. Map drift (a client routing on a stale membership) is
// self-healing: servers reject keys outside their range with
// StatusWrongShard carrying an encoded map hint, and the client swaps
// in any newer map it is handed and re-routes.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"encoding/binary"
)

// DefaultVnodes is the virtual-node count per shard on the hash ring.
// More vnodes smooth the key-space split between shards (the classic
// consistent-hashing variance argument); 64 keeps the ring a few KB at
// realistic shard counts while holding per-shard load within a few
// percent of even.
const DefaultVnodes = 64

// Shard is one shard group: an identity and the client-facing addresses
// of its replication-group members (primary first by convention, though
// the per-group client discovers the real primary via redirects).
type Shard struct {
	ID    int
	Addrs []string
}

// ringPoint is one virtual node: a position on the hash ring owned by a
// shard.
type ringPoint struct {
	hash  uint64
	shard int32 // index into Map.shards (not the shard ID)
}

// Map is a versioned consistent-hash shard map. Routing is a pure
// function of (key, shard-ID set, vnodes): the ring is derived only
// from shard identities, never from addresses or membership order, so
// two parties holding the same version agree on every key's owner no
// matter how they enumerated the shards — and rebuilding the map does
// not move keys.
type Map struct {
	version uint64
	vnodes  int
	shards  []Shard // sorted by ID
	ring    []ringPoint
}

// NewMap builds a shard map. Shards may arrive in any order; they are
// canonicalized by ID. vnodes <= 0 selects DefaultVnodes. Duplicate
// shard IDs are an error (two owners for one range is a split-brain
// map).
func NewMap(version uint64, shards []Shard, vnodes int) (*Map, error) {
	if len(shards) == 0 {
		return nil, errors.New("cluster: map needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	m := &Map{version: version, vnodes: vnodes, shards: make([]Shard, len(shards))}
	copy(m.shards, shards)
	sort.Slice(m.shards, func(i, j int) bool { return m.shards[i].ID < m.shards[j].ID })
	for i := 1; i < len(m.shards); i++ {
		if m.shards[i].ID == m.shards[i-1].ID {
			return nil, fmt.Errorf("cluster: duplicate shard id %d", m.shards[i].ID)
		}
	}
	m.ring = make([]ringPoint, 0, len(m.shards)*vnodes)
	for si := range m.shards {
		id := uint64(uint32(m.shards[si].ID))
		for v := 0; v < vnodes; v++ {
			// The point position depends only on (shard ID, vnode index):
			// membership order, addresses, and the map version must not
			// move keys.
			h := mix64(id<<32 | uint64(v))
			m.ring = append(m.ring, ringPoint{hash: h, shard: int32(si)})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		// Hash collisions resolve by shard ID so the tie-break is as
		// order-independent as the points themselves.
		return m.shards[m.ring[i].shard].ID < m.shards[m.ring[j].shard].ID
	})
	return m, nil
}

// UniformMap builds the address-less map a server with only
// -shard-id/-shard-count knows: shards 0..count-1. It routes identically
// to any full map over the same IDs.
func UniformMap(version uint64, count, vnodes int) (*Map, error) {
	shards := make([]Shard, count)
	for i := range shards {
		shards[i] = Shard{ID: i}
	}
	return NewMap(version, shards, vnodes)
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mix for ring positions and key hashes. Keys are already uint64 but
// often sequential; the mix spreads them over the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Version reports the map's membership version.
func (m *Map) Version() uint64 { return m.version }

// Vnodes reports the per-shard virtual-node count.
func (m *Map) Vnodes() int { return m.vnodes }

// NumShards reports the shard count.
func (m *Map) NumShards() int { return len(m.shards) }

// Shards returns the canonicalized (ID-sorted) shard list.
func (m *Map) Shards() []Shard { return m.shards }

// ShardOf routes a key to its owning shard's ID: the first ring point
// clockwise from the key's hash.
func (m *Map) ShardOf(key uint64) int {
	h := mix64(key)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0 // wrap: the ring is a circle
	}
	return m.shards[m.ring[i].shard].ID
}

// ShardByID returns the shard with the given ID.
func (m *Map) ShardByID(id int) (Shard, bool) {
	i := sort.Search(len(m.shards), func(i int) bool { return m.shards[i].ID >= id })
	if i < len(m.shards) && m.shards[i].ID == id {
		return m.shards[i], true
	}
	return Shard{}, false
}

// ParseSpec parses a cluster spec: shard groups separated by ';', each
// group a comma-separated address list. Shard IDs are positional
// (0..n-1). Example (3 groups × 2 nodes):
//
//	"h1:7399,h2:7399;h3:7399,h4:7399;h5:7399,h6:7399"
func ParseSpec(spec string, version uint64, vnodes int) (*Map, error) {
	var shards []Shard
	for i, group := range strings.Split(spec, ";") {
		var addrs []string
		for _, a := range strings.Split(group, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no addresses", i)
		}
		shards = append(shards, Shard{ID: i, Addrs: addrs})
	}
	if len(shards) == 0 {
		return nil, errors.New("cluster: empty cluster spec")
	}
	return NewMap(version, shards, vnodes)
}

// Spec renders the map back into ParseSpec form (addresses only; IDs
// are positional, so a map with gaps in its ID space does not round-
// trip — cluster specs are always dense).
func (m *Map) Spec() string {
	groups := make([]string, len(m.shards))
	for i, s := range m.shards {
		groups[i] = strings.Join(s.Addrs, ",")
	}
	return strings.Join(groups, ";")
}

// --- Hint wire form ---
//
// The StatusWrongShard redirect carries the rejecting server's shard
// map, so a client routing on stale membership can swap in the newer
// map without an out-of-band config push. Layout (little-endian):
//
//	u32 magic "SHM1", u64 version, u32 vnodes, u32 nshards,
//	per shard: u32 id, u32 naddrs, per addr: u16 len, bytes

const hintMagic uint32 = 0x53484D31 // "SHM1"

// errBadHint marks an undecodable shard-map hint.
var errBadHint = errors.New("cluster: bad shard-map hint")

// AppendHint encodes the map's hint form onto buf.
func (m *Map) AppendHint(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, hintMagic)
	buf = binary.LittleEndian.AppendUint64(buf, m.version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.vnodes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.shards)))
	for _, s := range m.shards {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s.ID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Addrs)))
		for _, a := range s.Addrs {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a)))
			buf = append(buf, a...)
		}
	}
	return buf
}

// Hint returns the map's encoded hint form (a fresh slice).
func (m *Map) Hint() []byte { return m.AppendHint(nil) }

// maxHintShards bounds the shard count a hint may claim, so a hostile
// count cannot drive a huge allocation.
const maxHintShards = 1 << 16

// DecodeHint parses a StatusWrongShard hint back into a Map.
func DecodeHint(b []byte) (*Map, error) {
	if len(b) < 20 || binary.LittleEndian.Uint32(b) != hintMagic {
		return nil, errBadHint
	}
	version := binary.LittleEndian.Uint64(b[4:])
	vnodes := int(binary.LittleEndian.Uint32(b[12:]))
	n := int(binary.LittleEndian.Uint32(b[16:]))
	if n <= 0 || n > maxHintShards || vnodes <= 0 {
		return nil, errBadHint
	}
	pos := 20
	shards := make([]Shard, 0, n)
	for i := 0; i < n; i++ {
		if len(b)-pos < 8 {
			return nil, errBadHint
		}
		id := int(int32(binary.LittleEndian.Uint32(b[pos:])))
		na := int(binary.LittleEndian.Uint32(b[pos+4:]))
		pos += 8
		if na < 0 || na > maxHintShards {
			return nil, errBadHint
		}
		var addrs []string
		for j := 0; j < na; j++ {
			if len(b)-pos < 2 {
				return nil, errBadHint
			}
			al := int(binary.LittleEndian.Uint16(b[pos:]))
			pos += 2
			if len(b)-pos < al {
				return nil, errBadHint
			}
			addrs = append(addrs, string(b[pos:pos+al]))
			pos += al
		}
		shards = append(shards, Shard{ID: id, Addrs: addrs})
	}
	if pos != len(b) {
		return nil, errBadHint
	}
	return NewMap(version, shards, vnodes)
}

package cluster

// The cluster-aware client: one tcp.Client per shard group (each with
// its own connection, dedup sessions, and pipelined in-flight window),
// a routing layer that sends every key to the group owning it under the
// current shard map, and fan-out paths that split multi-op frames by
// shard and issue the per-shard sub-batches concurrently. NotPrimary
// redirects are absorbed inside each group's tcp.Client (the group is
// one replication cluster); WrongShard redirects are absorbed here, by
// adopting the newer map from the server's hint and re-routing.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"flatstore/internal/tcp"
)

// DefaultMaxReroutes bounds how many times one logical call chases
// WrongShard redirects before giving up: each reroute should deliver a
// newer map, so more than a few means the cluster's members disagree
// about ownership faster than the client can follow.
const DefaultMaxReroutes = 3

// ClientOptions tunes the cluster client.
type ClientOptions struct {
	// TCP is applied to every per-group tcp.Client (window, timeouts,
	// retry budget). The zero value selects the tcp defaults.
	TCP tcp.Options
	// Vnodes is the per-shard virtual-node count used when parsing the
	// cluster spec; 0 selects DefaultVnodes. All parties must agree.
	Vnodes int
	// MaxReroutes bounds WrongShard-redirect chases per logical call;
	// 0 selects DefaultMaxReroutes.
	MaxReroutes int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Vnodes <= 0 {
		o.Vnodes = DefaultVnodes
	}
	if o.MaxReroutes <= 0 {
		o.MaxReroutes = DefaultMaxReroutes
	}
	return o
}

// ClientStats counts the routing layer's work.
type ClientStats struct {
	Ops        uint64         // single ops routed
	Batches    uint64         // multi-op calls split by shard
	SubBatches uint64         // per-shard sub-batches issued
	Scans      uint64         // scans fanned out
	ScanChunks uint64         // per-shard scan chunks fetched
	Reroutes   uint64         // ops replayed after a WrongShard redirect
	MapSwaps   uint64         // newer maps adopted from hints
	OpsByShard map[int]uint64 // ops routed per shard ID (single + sub-batch)
}

// ErrClientClosed reports use of a closed cluster client.
var ErrClientClosed = errors.New("cluster: client closed")

// Client routes FlatStore operations across a sharded cluster.
type Client struct {
	opts ClientOptions

	mu     sync.RWMutex
	m      *Map
	conns  map[int]*tcp.Client // by shard ID, dialled lazily
	byID   map[int]uint64      // ops routed per shard ID
	closed bool

	ops, batches, subBatches atomic.Uint64
	scans, scanChunks        atomic.Uint64
	reroutes, mapSwaps       atomic.Uint64
	inflight                 atomic.Int64

	// Pipelined-submission completion set (see Submit*/Poll below).
	compMu sync.Mutex
	comp   map[*Ticket]struct{}
}

// Dial builds a cluster client over a ParseSpec cluster spec
// (";"-separated shard groups, each a comma-separated address list) and
// eagerly connects to every group.
func Dial(spec string, o ClientOptions) (*Client, error) {
	return DialContext(context.Background(), spec, o)
}

// DialContext is Dial bounded by ctx.
func DialContext(ctx context.Context, spec string, o ClientOptions) (*Client, error) {
	o = o.withDefaults()
	m, err := ParseSpec(spec, 1, o.Vnodes)
	if err != nil {
		return nil, err
	}
	return DialMap(ctx, m, o)
}

// DialMap builds a cluster client over an existing shard map and
// eagerly connects to every group. Every shard must carry addresses.
func DialMap(ctx context.Context, m *Map, o ClientOptions) (*Client, error) {
	o = o.withDefaults()
	c := &Client{
		opts:  o,
		m:     m,
		conns: map[int]*tcp.Client{},
		byID:  map[int]uint64{},
		comp:  map[*Ticket]struct{}{},
	}
	for _, s := range m.Shards() {
		if _, err := c.connFor(ctx, s.ID); err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: shard %d: %w", s.ID, err)
		}
	}
	return c, nil
}

// Close tears down every per-group connection.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.conns
	c.conns = map[int]*tcp.Client{}
	c.mu.Unlock()
	for _, cl := range conns {
		cl.Close()
	}
	return nil
}

// Map returns the client's current shard map.
func (c *Client) Map() *Map {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m
}

// Stats snapshots the routing counters.
func (c *Client) Stats() ClientStats {
	st := ClientStats{
		Ops:        c.ops.Load(),
		Batches:    c.batches.Load(),
		SubBatches: c.subBatches.Load(),
		Scans:      c.scans.Load(),
		ScanChunks: c.scanChunks.Load(),
		Reroutes:   c.reroutes.Load(),
		MapSwaps:   c.mapSwaps.Load(),
		OpsByShard: map[int]uint64{},
	}
	c.mu.RLock()
	for id, n := range c.byID {
		st.OpsByShard[id] = n
	}
	c.mu.RUnlock()
	return st
}

// countShard attributes n ops to a shard in the per-shard counters.
func (c *Client) countShard(id int, n uint64) {
	c.mu.Lock()
	c.byID[id] += n
	c.mu.Unlock()
}

// connFor returns (dialling if needed) the tcp.Client of a shard group.
// The group's whole address list is handed to the tcp client, so
// NotPrimary redirects and failover re-pointing stay inside the group.
func (c *Client) connFor(ctx context.Context, shardID int) (*tcp.Client, error) {
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, ErrClientClosed
	}
	if cl, ok := c.conns[shardID]; ok {
		c.mu.RUnlock()
		return cl, nil
	}
	s, ok := c.m.ShardByID(shardID)
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cluster: no shard %d in map", shardID)
	}
	if len(s.Addrs) == 0 {
		return nil, fmt.Errorf("cluster: shard %d has no addresses", shardID)
	}
	cl, err := tcp.DialContext(ctx, joinAddrs(s.Addrs), c.opts.TCP)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cl.Close()
		return nil, ErrClientClosed
	}
	if prior, ok := c.conns[shardID]; ok { // lost a dial race; keep the winner
		c.mu.Unlock()
		cl.Close()
		return prior, nil
	}
	c.conns[shardID] = cl
	c.mu.Unlock()
	return cl, nil
}

func joinAddrs(addrs []string) string {
	out := ""
	for i, a := range addrs {
		if i > 0 {
			out += ","
		}
		out += a
	}
	return out
}

// connForKey routes a key under the current map and returns the owning
// group's client plus the shard ID it routed to.
func (c *Client) connForKey(ctx context.Context, key uint64) (*tcp.Client, int, error) {
	id := c.Map().ShardOf(key)
	cl, err := c.connFor(ctx, id)
	return cl, id, err
}

// adoptHint decodes a WrongShard map hint, swapping it in if it is
// newer than the map the client routes on (same-or-older hints leave
// the map alone). It reports whether the hint decoded — a usable hint
// is worth a re-route even when it was not adopted, because a
// concurrent op may have adopted the same map first and routing already
// changed under this caller.
func (c *Client) adoptHint(hint []byte) bool {
	m, err := DecodeHint(hint)
	if err != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m.Version() > c.m.Version() {
		c.m = m
		c.mapSwaps.Add(1)
	}
	return true
}

// --- Routed single ops ---

// Put stores a key-value pair on the owning shard.
func (c *Client) Put(key uint64, value []byte) error {
	return c.PutCtx(context.Background(), key, value)
}

// PutCtx is Put bounded by ctx.
func (c *Client) PutCtx(ctx context.Context, key uint64, value []byte) error {
	c.ops.Add(1)
	for attempt := 0; ; attempt++ {
		cl, id, err := c.connForKey(ctx, key)
		if err != nil {
			return err
		}
		c.countShard(id, 1)
		err = cl.PutCtx(ctx, key, value)
		if !c.shouldReroute(err, attempt) {
			return err
		}
	}
}

// Get fetches a value from the owning shard.
func (c *Client) Get(key uint64) ([]byte, bool, error) {
	return c.GetCtx(context.Background(), key)
}

// GetCtx is Get bounded by ctx.
func (c *Client) GetCtx(ctx context.Context, key uint64) ([]byte, bool, error) {
	c.ops.Add(1)
	for attempt := 0; ; attempt++ {
		cl, id, err := c.connForKey(ctx, key)
		if err != nil {
			return nil, false, err
		}
		c.countShard(id, 1)
		v, ok, err := cl.GetCtx(ctx, key)
		if !c.shouldReroute(err, attempt) {
			return v, ok, err
		}
	}
}

// Delete removes a key from the owning shard.
func (c *Client) Delete(key uint64) (bool, error) {
	return c.DeleteCtx(context.Background(), key)
}

// DeleteCtx is Delete bounded by ctx.
func (c *Client) DeleteCtx(ctx context.Context, key uint64) (bool, error) {
	c.ops.Add(1)
	for attempt := 0; ; attempt++ {
		cl, id, err := c.connForKey(ctx, key)
		if err != nil {
			return false, err
		}
		c.countShard(id, 1)
		ok, err := cl.DeleteCtx(ctx, key)
		if !c.shouldReroute(err, attempt) {
			return ok, err
		}
	}
}

// shouldReroute reports whether err is a WrongShard redirect worth
// chasing: the hint must decode and the attempt budget must not be
// spent. The budget bounds the pathological case of cluster members
// that keep disagreeing about ownership (a stale hint cannot ping-pong
// forever). Replaying a write against the new owner is safe — each
// group's tcp.Client keeps its own dedup sessions, so the replay is a
// fresh (session, id) there and the rejected attempt applied nothing on
// the wrong server.
func (c *Client) shouldReroute(err error, attempt int) bool {
	var ws *tcp.WrongShardError
	if !errors.As(err, &ws) || attempt >= c.opts.MaxReroutes {
		return false
	}
	if !c.adoptHint(ws.Hint) {
		return false
	}
	c.reroutes.Add(1)
	return true
}

// --- Fan-out multi-op calls ---

// shardBatch is one shard's slice of a split multi-op call: the op
// indices (into the caller's slice) this shard owns this round.
type shardBatch struct {
	id  int
	idx []int
}

// splitByShard groups op indices by owning shard under the current map.
// Groups come out ID-sorted, so sub-batch issue order is deterministic
// (completion order is not — the merge is positional).
func (c *Client) splitByShard(keys func(i int) uint64, idx []int) []shardBatch {
	m := c.Map()
	byShard := map[int][]int{}
	for _, i := range idx {
		id := m.ShardOf(keys(i))
		byShard[id] = append(byShard[id], i)
	}
	out := make([]shardBatch, 0, len(byShard))
	for id, ix := range byShard {
		out = append(out, shardBatch{id: id, idx: ix})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

// fanOut issues one round of per-shard sub-batches concurrently and
// waits for all of them. run executes one shard's sub-batch and reports
// a transport-level error (per-op outcomes are its own business); the
// first transport error fails the round.
func (c *Client) fanOut(ctx context.Context, batches []shardBatch,
	run func(ctx context.Context, b shardBatch) error) error {
	if len(batches) == 1 {
		c.subBatches.Add(1)
		c.countShard(batches[0].id, uint64(len(batches[0].idx)))
		return run(ctx, batches[0])
	}
	var wg sync.WaitGroup
	errs := make([]error, len(batches))
	for bi := range batches {
		c.subBatches.Add(1)
		c.countShard(batches[bi].id, uint64(len(batches[bi].idx)))
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			errs[bi] = run(ctx, batches[bi])
		}(bi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MultiGet fetches many keys, splitting the frame by owning shard and
// issuing the per-shard sub-batches concurrently. Results are
// positional: out[i] answers keys[i] regardless of which shard served
// it or in what order the sub-batches completed.
func (c *Client) MultiGet(keys []uint64) ([]tcp.MultiRes, error) {
	return c.MultiGetCtx(context.Background(), keys)
}

// MultiGetCtx is MultiGet bounded by ctx.
func (c *Client) MultiGetCtx(ctx context.Context, keys []uint64) ([]tcp.MultiRes, error) {
	c.batches.Add(1)
	out := make([]tcp.MultiRes, len(keys))
	pending := make([]int, len(keys))
	for i := range pending {
		pending[i] = i
	}
	for round := 0; len(pending) > 0; round++ {
		batches := c.splitByShard(func(i int) uint64 { return keys[i] }, pending)
		var mu sync.Mutex
		var next []int
		err := c.fanOut(ctx, batches, func(ctx context.Context, b shardBatch) error {
			cl, err := c.connFor(ctx, b.id)
			if err != nil {
				return err
			}
			sub := make([]uint64, len(b.idx))
			for j, i := range b.idx {
				sub[j] = keys[i]
			}
			res, err := cl.MultiGetCtx(ctx, sub)
			if err != nil {
				return err
			}
			var redo []int
			for j, i := range b.idx {
				if c.redoOp(res[j].Err, round) {
					redo = append(redo, i)
					continue
				}
				out[i] = res[j]
			}
			if len(redo) > 0 {
				mu.Lock()
				next = append(next, redo...)
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		pending = next
	}
	return out, nil
}

// WriteBatch applies a mixed batch of puts and deletes, split by shard
// and issued concurrently, with positional results. Like the single-
// shard WriteBatch it is not atomic — each op lands individually — but
// every op is applied exactly once on its owning shard even across
// retries, reconnects, and WrongShard re-routing.
func (c *Client) WriteBatch(ops []tcp.BatchOp) ([]tcp.BatchRes, error) {
	return c.WriteBatchCtx(context.Background(), ops)
}

// WriteBatchCtx is WriteBatch bounded by ctx.
func (c *Client) WriteBatchCtx(ctx context.Context, ops []tcp.BatchOp) ([]tcp.BatchRes, error) {
	c.batches.Add(1)
	out := make([]tcp.BatchRes, len(ops))
	pending := make([]int, len(ops))
	for i := range pending {
		pending[i] = i
	}
	for round := 0; len(pending) > 0; round++ {
		batches := c.splitByShard(func(i int) uint64 { return ops[i].Key }, pending)
		var mu sync.Mutex
		var next []int
		err := c.fanOut(ctx, batches, func(ctx context.Context, b shardBatch) error {
			cl, err := c.connFor(ctx, b.id)
			if err != nil {
				return err
			}
			sub := make([]tcp.BatchOp, len(b.idx))
			for j, i := range b.idx {
				sub[j] = ops[i]
			}
			res, err := cl.WriteBatchCtx(ctx, sub)
			if err != nil {
				return err
			}
			var redo []int
			for j, i := range b.idx {
				if c.redoOp(res[j].Err, round) {
					redo = append(redo, i)
					continue
				}
				out[i] = res[j]
			}
			if len(redo) > 0 {
				mu.Lock()
				next = append(next, redo...)
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		pending = next
	}
	return out, nil
}

// redoOp reports whether a per-op WrongShard outcome should be replayed
// in the next fan-out round (adopting the hint's map when it is newer;
// a same-version hint still earns a replay, because a sibling sub-batch
// may have adopted that map while this one was in flight).
func (c *Client) redoOp(err error, round int) bool {
	var ws *tcp.WrongShardError
	if !errors.As(err, &ws) || round >= c.opts.MaxReroutes {
		return false
	}
	if !c.adoptHint(ws.Hint) {
		return false
	}
	c.reroutes.Add(1)
	return true
}

// MultiPut stores many pairs across the cluster, failing if any put
// failed.
func (c *Client) MultiPut(pairs []tcp.Pair) error {
	return c.MultiPutCtx(context.Background(), pairs)
}

// MultiPutCtx is MultiPut bounded by ctx.
func (c *Client) MultiPutCtx(ctx context.Context, pairs []tcp.Pair) error {
	ops := make([]tcp.BatchOp, len(pairs))
	for i := range pairs {
		ops[i] = tcp.BatchOp{Key: pairs[i].Key, Value: pairs[i].Value}
	}
	res, err := c.WriteBatchCtx(ctx, ops)
	if err != nil {
		return err
	}
	for i := range res {
		if res[i].Err != nil {
			return fmt.Errorf("cluster: multiput key %d: %w", pairs[i].Key, res[i].Err)
		}
	}
	return nil
}

// MultiDelete removes many keys across the cluster, reporting which
// existed.
func (c *Client) MultiDelete(keys []uint64) ([]bool, error) {
	return c.MultiDeleteCtx(context.Background(), keys)
}

// MultiDeleteCtx is MultiDelete bounded by ctx.
func (c *Client) MultiDeleteCtx(ctx context.Context, keys []uint64) ([]bool, error) {
	ops := make([]tcp.BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = tcp.BatchOp{Key: k, Delete: true}
	}
	res, err := c.WriteBatchCtx(ctx, ops)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(keys))
	for i := range res {
		if res[i].Err != nil {
			return nil, fmt.Errorf("cluster: multidelete key %d: %w", keys[i], res[i].Err)
		}
		out[i] = res[i].Existed
	}
	return out, nil
}

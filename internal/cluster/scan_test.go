package cluster

// Cross-shard Scan under concurrent writes: the k-way merge must yield
// globally key-ordered results, and keys that are stable for the whole
// test must always appear. Run with -race in CI.

import (
	"encoding/binary"
	"sync"
	"testing"

	"flatstore/internal/batch"
	"flatstore/internal/core"
	"flatstore/internal/tcp"
)

func orderedStore() core.Config {
	return core.Config{
		Cores: 2, Mode: batch.ModePipelinedHB,
		Index: core.IndexMasstree, ArenaChunks: 64,
	}
}

// TestClusterScanOrderedUnderWrites: preload a stable range, hammer a
// disjoint range from concurrent writers through the same client, and
// keep scanning the union. Every scan must come back strictly ascending
// with the full stable range present.
func TestClusterScanOrderedUnderWrites(t *testing.T) {
	servers := startShards(t, 3, orderedStore())
	m := gateAll(t, servers, 1)
	cl := dialCluster(t, m, ClientOptions{})

	const stableLo, stableHi = uint64(0), uint64(1000)  // never touched after preload
	const churnLo, churnHi = uint64(1000), uint64(2000) // written during scans
	pairs := make([]tcp.Pair, 0, stableHi-stableLo)
	for k := stableLo; k < stableHi; k++ {
		pairs = append(pairs, tcp.Pair{Key: k, Value: seqValue(k)})
	}
	if err := cl.MultiPut(pairs); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := churnLo + uint64(w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := cl.Put(k, seqValue(k)); err != nil {
					t.Errorf("writer %d: put %d: %v", w, k, err)
					return
				}
				k += 3
				if k >= churnHi {
					k = churnLo + uint64(w)
				}
				if i%16 == 15 { // interleave deletes so churn goes both ways
					if _, err := cl.Delete(k); err != nil {
						t.Errorf("writer %d: delete %d: %v", w, k, err)
						return
					}
				}
			}
		}(w)
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	scans := 15
	if testing.Short() {
		scans = 4
	}
	for round := 0; round < scans; round++ {
		got, err := cl.Scan(stableLo, churnHi, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Globally strictly ascending — the merge never interleaves
		// shards out of key order and never duplicates a key.
		for i := 1; i < len(got); i++ {
			if got[i].Key <= got[i-1].Key {
				t.Fatalf("round %d: scan out of order at %d: key %d after key %d",
					round, i, got[i].Key, got[i-1].Key)
			}
		}
		// The stable range is fully present with its own values.
		idx := 0
		for k := stableLo; k < stableHi; k++ {
			for idx < len(got) && got[idx].Key < k {
				idx++
			}
			if idx >= len(got) || got[idx].Key != k {
				t.Fatalf("round %d: stable key %d missing from scan", round, k)
			}
			if binary.LittleEndian.Uint64(got[idx].Value) != k {
				t.Fatalf("round %d: stable key %d has wrong value", round, k)
			}
		}
	}

	// Limit handling across the merge: exactly limit results, ordered,
	// and the first `limit` of the stable range.
	got, err := cl.Scan(stableLo, churnHi, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("limit 100 returned %d pairs", len(got))
	}
	for i, p := range got {
		if p.Key != uint64(i) {
			t.Fatalf("limited scan position %d: key %d", i, p.Key)
		}
	}
	if st := cl.Stats(); st.Scans == 0 || st.ScanChunks < st.Scans {
		t.Errorf("scan counters off: %d scans, %d chunks", st.Scans, st.ScanChunks)
	}
}

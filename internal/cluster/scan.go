package cluster

// Cross-shard Scan: every shard holds an arbitrary (hash-routed) subset
// of the key space, so a range scan must ask all of them. The client
// fans the scan out to every shard group in parallel — each group
// streams its ordered range in chunks through a per-shard cursor
// goroutine — and merges the k ordered streams with a heap, yielding
// globally ordered pairs without buffering any shard's full result.
//
// Consistency matches the single-shard Scan: each chunk is a consistent
// read of its shard at fetch time, but the merged view is not a
// snapshot — a concurrent writer may land a key behind one shard's
// cursor and ahead of another's. What the merge does guarantee is
// global key order of what it yields, which is what the range-query
// fan-out needs.

import (
	"container/heap"
	"context"
	"math"

	"flatstore/internal/tcp"
)

// scanChunkSize is the per-shard fetch granularity: big enough that the
// per-chunk round trip amortizes, small enough that a limit-bounded
// merge does not over-fetch every shard.
const scanChunkSize = 512

// scanChunk is one fetched slice of a shard's ordered range.
type scanChunk struct {
	pairs []tcp.Pair
	err   error
}

// scanCursor is the merge-side view of one shard's stream: the chunk
// being consumed and the channel the fetcher goroutine refills from.
type scanCursor struct {
	shard int
	buf   []tcp.Pair
	pos   int
	ch    <-chan scanChunk
	err   error
}

// head is the cursor's current pair.
func (sc *scanCursor) head() tcp.Pair { return sc.buf[sc.pos] }

// advance moves past the current pair, pulling the next chunk when the
// buffer drains. It reports whether the cursor still has data; on a
// stream error it records err and reports false.
func (sc *scanCursor) advance() bool {
	sc.pos++
	for sc.pos >= len(sc.buf) {
		chunk, ok := <-sc.ch
		if !ok {
			return false
		}
		if chunk.err != nil {
			sc.err = chunk.err
			return false
		}
		sc.buf, sc.pos = chunk.pairs, 0
	}
	return true
}

// cursorHeap orders live cursors by their head key (shard ID breaks
// ties, though two healthy shards never hold the same key).
type cursorHeap []*scanCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	if h[i].head().Key != h[j].head().Key {
		return h[i].head().Key < h[j].head().Key
	}
	return h[i].shard < h[j].shard
}
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(*scanCursor)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Scan returns up to limit pairs in [lo, hi], globally key-ordered,
// merged from all shards. limit <= 0 means no bound.
func (c *Client) Scan(lo, hi uint64, limit int) ([]tcp.Pair, error) {
	return c.ScanCtx(context.Background(), lo, hi, limit)
}

// ScanCtx is Scan bounded by ctx.
func (c *Client) ScanCtx(ctx context.Context, lo, hi uint64, limit int) ([]tcp.Pair, error) {
	c.scans.Add(1)
	m := c.Map()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // stops the fetchers once the merge returns

	chunk := scanChunkSize
	if limit > 0 && limit < chunk {
		chunk = limit
	}

	shards := m.Shards()
	cursors := make([]*scanCursor, 0, len(shards))
	for _, s := range shards {
		cl, err := c.connFor(ctx, s.ID)
		if err != nil {
			return nil, err
		}
		ch := make(chan scanChunk, 1) // one chunk of read-ahead per shard
		go c.fetchShardRange(ctx, cl, lo, hi, chunk, ch)
		cursors = append(cursors, &scanCursor{shard: s.ID, buf: nil, pos: -1, ch: ch})
	}

	// Prime every cursor (the initial fetches are already running in
	// parallel), then heap-merge.
	h := make(cursorHeap, 0, len(cursors))
	for _, sc := range cursors {
		if sc.advance() {
			h = append(h, sc)
		} else if sc.err != nil {
			return nil, sc.err
		}
	}
	heap.Init(&h)

	var out []tcp.Pair
	var haveLast bool
	var last uint64
	for h.Len() > 0 && (limit <= 0 || len(out) < limit) {
		sc := h[0]
		p := sc.head()
		// A key can only repeat across shards while a map change is in
		// flight (a writer raced the ownership move); keep the first —
		// it came from the lower shard ID, deterministically.
		if !haveLast || p.Key != last {
			out = append(out, p)
			last, haveLast = p.Key, true
		}
		if sc.advance() {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
			if sc.err != nil {
				return nil, sc.err
			}
		}
	}
	return out, nil
}

// fetchShardRange streams one shard's [lo, hi] range into ch, chunk by
// chunk, until the range is exhausted, an error occurs, or ctx fires.
func (c *Client) fetchShardRange(ctx context.Context, cl *tcp.Client, lo, hi uint64, chunk int, ch chan<- scanChunk) {
	defer close(ch)
	for {
		pairs, err := cl.ScanCtx(ctx, lo, hi, chunk)
		c.scanChunks.Add(1)
		if err != nil {
			if ctx.Err() != nil {
				return // merge finished early; nobody is listening
			}
			select {
			case ch <- scanChunk{err: err}:
			case <-ctx.Done():
			}
			return
		}
		if len(pairs) > 0 {
			select {
			case ch <- scanChunk{pairs: pairs}:
			case <-ctx.Done():
				return
			}
		}
		if len(pairs) < chunk {
			return // shard range exhausted
		}
		lastKey := pairs[len(pairs)-1].Key
		if lastKey == math.MaxUint64 || lastKey >= hi {
			return
		}
		lo = lastKey + 1
	}
}

package cluster

// End-to-end cluster client tests over real stores and real TCP servers:
// routed single ops, positional fan-out batches under concurrent
// completion order, WrongShard self-healing on a stale map, and the
// pipelined async path.

import (
	"context"
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"flatstore/internal/batch"
	"flatstore/internal/core"
	"flatstore/internal/tcp"
)

// testShard is one running one-node shard group.
type testShard struct {
	st   *core.Store
	srv  *tcp.Server
	addr string
}

// startShards spins n shard servers (no gates yet) and registers
// cleanup. Each is a full store behind a real TCP listener.
func startShards(t *testing.T, n int, cfg core.Config) []*testShard {
	t.Helper()
	out := make([]*testShard, n)
	for i := 0; i < n; i++ {
		st, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st.Run()
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			st.Stop()
			t.Fatal(err)
		}
		srv := tcp.NewServer(st)
		go srv.Serve(lis)
		s := &testShard{st: st, srv: srv, addr: lis.Addr().String()}
		t.Cleanup(func() {
			s.srv.Close()
			s.st.Stop()
		})
		out[i] = s
	}
	return out
}

// smallStore is the config shard tests use unless they need an ordered
// index.
func smallStore() core.Config {
	return core.Config{Cores: 2, Mode: batch.ModePipelinedHB, ArenaChunks: 64}
}

// gateAll builds a version-v map over the shards and installs a gate on
// each server.
func gateAll(t *testing.T, servers []*testShard, version uint64) *Map {
	t.Helper()
	shards := make([]Shard, len(servers))
	for i, s := range servers {
		shards[i] = Shard{ID: i, Addrs: []string{s.addr}}
	}
	m, err := NewMap(version, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range servers {
		g, err := NewGate(m, i)
		if err != nil {
			t.Fatal(err)
		}
		s.srv.SetShard(g)
	}
	return m
}

// dialCluster dials the map with a small window and registers cleanup.
func dialCluster(t *testing.T, m *Map, o ClientOptions) *Client {
	t.Helper()
	cl, err := DialMap(context.Background(), m, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func seqValue(key uint64) []byte {
	v := make([]byte, 8)
	binary.LittleEndian.PutUint64(v, key)
	return v
}

// TestClusterRoutedOps: single Put/Get/Delete land on the owning shard
// and every shard sees traffic.
func TestClusterRoutedOps(t *testing.T) {
	servers := startShards(t, 3, smallStore())
	m := gateAll(t, servers, 1)
	cl := dialCluster(t, m, ClientOptions{})

	const n = 300
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, seqValue(k)); err != nil {
			t.Fatalf("put %d: %v", k, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := cl.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", k, ok, err)
		}
		if binary.LittleEndian.Uint64(v) != k {
			t.Fatalf("get %d: wrong value", k)
		}
	}
	// Routing actually spread the keys: each shard served some ops, and
	// each op went to the shard the map names.
	st := cl.Stats()
	for id := 0; id < 3; id++ {
		if st.OpsByShard[id] == 0 {
			t.Errorf("shard %d received no ops — ring routing collapsed", id)
		}
	}
	// Deletes: present then absent.
	for k := uint64(0); k < n; k += 7 {
		existed, err := cl.Delete(k)
		if err != nil || !existed {
			t.Fatalf("delete %d: existed=%v err=%v", k, existed, err)
		}
		if _, ok, _ := cl.Get(k); ok {
			t.Fatalf("key %d still present after delete", k)
		}
	}
	if st.Reroutes != 0 {
		t.Errorf("reroutes on a stable map: %d", st.Reroutes)
	}
}

// TestClusterMultiGetPositional: results must line up with the request
// positions regardless of which shard served each key and in what order
// the per-shard sub-batches completed. Background writers keep the
// shards busy so completion order genuinely varies.
func TestClusterMultiGetPositional(t *testing.T) {
	servers := startShards(t, 3, smallStore())
	m := gateAll(t, servers, 1)
	cl := dialCluster(t, m, ClientOptions{})

	const n = 256
	pairs := make([]tcp.Pair, 0, n)
	for k := uint64(0); k < n; k++ {
		pairs = append(pairs, tcp.Pair{Key: k, Value: seqValue(k)})
	}
	if err := cl.MultiPut(pairs); err != nil {
		t.Fatal(err)
	}

	// Background writers on a disjoint key range, through the same
	// client, to perturb per-shard service order.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := uint64(1_000_000 + w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = cl.Put(k, seqValue(k))
				k += 2
			}
		}(w)
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		// Shuffled key order, with some misses salted in.
		keys := make([]uint64, 0, n+8)
		for k := uint64(0); k < n; k++ {
			keys = append(keys, k)
		}
		for i := 0; i < 8; i++ {
			keys = append(keys, uint64(2_000_000+i))
		}
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

		res, err := cl.MultiGet(keys)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(keys) {
			t.Fatalf("got %d results for %d keys", len(res), len(keys))
		}
		for i, k := range keys {
			if k >= 2_000_000 {
				if res[i].OK {
					t.Fatalf("round %d: missing key %d reported present at position %d", round, k, i)
				}
				continue
			}
			if res[i].Err != nil || !res[i].OK {
				t.Fatalf("round %d: key %d at position %d: ok=%v err=%v",
					round, k, i, res[i].OK, res[i].Err)
			}
			if got := binary.LittleEndian.Uint64(res[i].Value); got != k {
				t.Fatalf("round %d: position %d asked for key %d, got value of key %d — positional merge broke",
					round, i, k, got)
			}
		}
	}
	if st := cl.Stats(); st.SubBatches <= st.Batches {
		t.Errorf("batches were not split: %d sub-batches for %d batches", st.SubBatches, st.Batches)
	}
}

// TestClusterWriteBatchPositional: mixed put/delete batches keep
// positional outcomes across the shard split.
func TestClusterWriteBatchPositional(t *testing.T) {
	servers := startShards(t, 3, smallStore())
	m := gateAll(t, servers, 1)
	cl := dialCluster(t, m, ClientOptions{})

	const n = 128
	for k := uint64(0); k < n; k += 2 { // pre-load even keys
		if err := cl.Put(k, seqValue(k)); err != nil {
			t.Fatal(err)
		}
	}
	// One frame: delete every even key, put every odd key.
	ops := make([]tcp.BatchOp, n)
	for k := uint64(0); k < n; k++ {
		if k%2 == 0 {
			ops[k] = tcp.BatchOp{Key: k, Delete: true}
		} else {
			ops[k] = tcp.BatchOp{Key: k, Value: seqValue(k)}
		}
	}
	res, err := cl.WriteBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		if res[k].Err != nil {
			t.Fatalf("op %d: %v", k, res[k].Err)
		}
		if k%2 == 0 && !res[k].Existed {
			t.Fatalf("delete of pre-loaded key %d reported not-present", k)
		}
	}
	for k := uint64(0); k < n; k++ {
		_, ok, err := cl.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := k%2 == 1; ok != want {
			t.Fatalf("key %d: present=%v want %v", k, ok, want)
		}
	}
}

// TestClusterWrongShardSelfHeal: a client routing on a stale 2-shard map
// against servers gated on a newer 3-shard map must absorb the
// StatusWrongShard redirects — adopt the hinted map, dial the shard it
// did not know about, and replay — without surfacing errors.
func TestClusterWrongShardSelfHeal(t *testing.T) {
	servers := startShards(t, 3, smallStore())
	newMap := gateAll(t, servers, 2) // servers route on v2, all 3 shards

	// The stale v1 map only knows the first two shards.
	stale, err := NewMap(1, []Shard{
		{ID: 0, Addrs: []string{servers[0].addr}},
		{ID: 1, Addrs: []string{servers[1].addr}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := dialCluster(t, stale, ClientOptions{})

	const n = 400
	for k := uint64(0); k < n; k++ {
		if err := cl.Put(k, seqValue(k)); err != nil {
			t.Fatalf("put %d through stale map: %v", k, err)
		}
	}
	st := cl.Stats()
	if st.MapSwaps == 0 {
		t.Error("client never adopted the newer map from a WrongShard hint")
	}
	if st.Reroutes == 0 {
		t.Error("client never replayed a redirected op")
	}
	if got := cl.Map().Version(); got != newMap.Version() {
		t.Errorf("client map version = %d, want %d", got, newMap.Version())
	}
	// After healing, reads come back right — including keys the v2 ring
	// owns on shard 2, which the stale map did not even know existed.
	var onThird int
	for k := uint64(0); k < n; k++ {
		v, ok, err := cl.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %d after heal: ok=%v err=%v", k, ok, err)
		}
		if binary.LittleEndian.Uint64(v) != k {
			t.Fatalf("get %d after heal: wrong value", k)
		}
		if newMap.ShardOf(k) == 2 {
			onThird++
		}
	}
	if onThird == 0 {
		t.Fatal("test vacuous: no key routed to the shard missing from the stale map")
	}
}

// TestClusterMultiOpSelfHeal: the fan-out batch paths re-split and
// replay per-op WrongShard outcomes across rounds.
func TestClusterMultiOpSelfHeal(t *testing.T) {
	servers := startShards(t, 3, smallStore())
	gateAll(t, servers, 2)
	stale, err := NewMap(1, []Shard{
		{ID: 0, Addrs: []string{servers[0].addr}},
		{ID: 1, Addrs: []string{servers[1].addr}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := dialCluster(t, stale, ClientOptions{})

	const n = 200
	pairs := make([]tcp.Pair, 0, n)
	for k := uint64(0); k < n; k++ {
		pairs = append(pairs, tcp.Pair{Key: k, Value: seqValue(k)})
	}
	if err := cl.MultiPut(pairs); err != nil {
		t.Fatalf("multiput through stale map: %v", err)
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	res, err := cl.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || !r.OK || binary.LittleEndian.Uint64(r.Value) != keys[i] {
			t.Fatalf("key %d: ok=%v err=%v", keys[i], r.OK, r.Err)
		}
	}
	if st := cl.Stats(); st.Reroutes == 0 || st.MapSwaps == 0 {
		t.Errorf("batch path did not self-heal: %d reroutes, %d map swaps", st.Reroutes, st.MapSwaps)
	}
}

// TestClusterAsyncSubmit: the pipelined Submit/Poll path completes every
// ticket with the right outcome, including across WrongShard redirects
// absorbed inside the follow goroutine.
func TestClusterAsyncSubmit(t *testing.T) {
	servers := startShards(t, 3, smallStore())
	gateAll(t, servers, 2)
	stale, err := NewMap(1, []Shard{
		{ID: 0, Addrs: []string{servers[0].addr}},
		{ID: 1, Addrs: []string{servers[1].addr}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl := dialCluster(t, stale, ClientOptions{TCP: tcp.Options{Window: 8}})

	ctx := context.Background()
	const n = 300
	done := 0
	reap := func(block bool) {
		if block {
			deadline := time.Now().Add(10 * time.Second)
			for cl.InFlight() > 0 {
				if time.Now().After(deadline) {
					t.Fatalf("in-flight stuck at %d", cl.InFlight())
				}
				time.Sleep(time.Millisecond)
			}
		}
		for _, tk := range cl.Poll(0) {
			if err := tk.Err(); err != nil {
				t.Fatalf("ticket key %d: %v", tk.Key(), err)
			}
			done++
		}
	}
	for k := uint64(0); k < n; k++ {
		if _, err := cl.SubmitPut(ctx, k, seqValue(k)); err != nil {
			t.Fatalf("submit put %d: %v", k, err)
		}
		reap(false)
	}
	reap(true)
	if done != n {
		t.Fatalf("reaped %d tickets, submitted %d", done, n)
	}

	// Async gets via Wait, checking values and presence.
	for k := uint64(0); k < n; k += 17 {
		tk, err := cl.SubmitGet(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(ctx); err != nil {
			t.Fatal(err)
		}
		v, ok := tk.Value()
		if !ok || binary.LittleEndian.Uint64(v) != k {
			t.Fatalf("async get %d: ok=%v", k, ok)
		}
	}
	tk, err := cl.SubmitDelete(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(ctx); err != nil || !tk.Existed() {
		t.Fatalf("async delete: existed=%v err=%v", tk.Existed(), err)
	}
	if st := cl.Stats(); st.Reroutes == 0 {
		t.Error("async path never exercised a WrongShard replay against the stale map")
	}
}

package cluster

// Sharded failover e2e: three shard groups of two replicated nodes each
// (primary + semi-sync follower), a mixed write load through the
// fan-out client, one shard's primary killed mid-load, its follower
// promoted — and afterwards zero lost acknowledged writes, audited
// through the cluster client. With FLATSTORE_CLUSTER_SNAPSHOT set to a
// directory, each surviving group's metrics land there as
// shard-<id>.prom for the CI artifact.

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flatstore/internal/batch"
	"flatstore/internal/core"
	"flatstore/internal/obs"
	"flatstore/internal/repl"
	"flatstore/internal/tcp"
)

// replMember is one replicated node of a shard group: engine,
// replication node, client-facing TCP server.
type replMember struct {
	st     *core.Store
	n      *repl.Node
	srv    *tcp.Server
	addr   string
	killed bool
}

// startReplMember builds one serving group member. primaryRepl == ""
// makes it the group's primary.
func startReplMember(t *testing.T, primaryRepl string) *replMember {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	st, err := core.New(core.Config{Cores: 2, Mode: batch.ModePipelinedHB})
	if err != nil {
		t.Fatal(err)
	}
	cfg := repl.Config{
		Store: st, ListenAddr: "127.0.0.1:0", ServeAddr: addr,
		PrimaryAddr:   primaryRepl,
		SyncFollowers: 1, SyncTimeout: 10 * time.Second,
	}
	var n *repl.Node
	if primaryRepl == "" {
		n, err = repl.NewPrimary(cfg)
	} else {
		n, err = repl.NewFollower(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	st.Run()
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}
	srv := tcp.NewServer(st)
	srv.SetRepl(n)
	go srv.Serve(lis)
	m := &replMember{st: st, n: n, srv: srv, addr: addr}
	t.Cleanup(func() { m.kill() })
	return m
}

// kill hard-stops the member: client server, replication node, store.
// Idempotent so the mid-test kill and the cleanup do not collide.
func (m *replMember) kill() {
	if m.killed {
		return
	}
	m.killed = true
	m.srv.Close()
	m.n.Close()
	m.st.Stop()
}

// shardGroup is one replication group owning one shard.
type shardGroup struct {
	primary  *replMember
	follower *replMember
}

// keysOwnedBy returns the first want keys the map routes to shard id.
func keysOwnedBy(m *Map, id, want int) []uint64 {
	var out []uint64
	for k := uint64(0); len(out) < want; k++ {
		if m.ShardOf(k) == id {
			out = append(out, k)
		}
	}
	return out
}

// TestClusterFailoverZeroLoss is the sharded acceptance gate: kill one
// shard group's primary under mixed load across all shards, promote its
// follower, and audit that no acknowledged write was lost anywhere.
func TestClusterFailoverZeroLoss(t *testing.T) {
	const nGroups = 3
	groups := make([]shardGroup, nGroups)
	shards := make([]Shard, nGroups)
	for i := range groups {
		p := startReplMember(t, "")
		f := startReplMember(t, p.n.ListenAddr())
		groups[i] = shardGroup{primary: p, follower: f}
		// Primary first: the happy path connects without a redirect, and
		// failover exercises the in-group rotation to the follower.
		shards[i] = Shard{ID: i, Addrs: []string{p.addr, f.addr}}
	}
	m, err := NewMap(1, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		for _, mem := range []*replMember{g.primary, g.follower} {
			gate, err := NewGate(m, i)
			if err != nil {
				t.Fatal(err)
			}
			mem.srv.SetShard(gate)
		}
	}

	// One worker per shard, each single-writer on a key that shard owns,
	// so the audit window [acked, attempted] is exact per key.
	workers := make([]struct {
		key            uint64
		acked, attempt uint64
	}, nGroups)
	for i := range workers {
		workers[i].key = keysOwnedBy(m, i, 1)[0]
	}

	opts := ClientOptions{TCP: tcp.Options{
		DialTimeout:    300 * time.Millisecond,
		RequestTimeout: 300 * time.Millisecond,
		MaxAttempts:    50,
	}}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := DialMap(context.Background(), m, opts)
			if err != nil {
				t.Errorf("worker %d: dial: %v", i, err)
				return
			}
			defer cl.Close()
			var vb [8]byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq := workers[i].attempt + 1
				workers[i].attempt = seq
				binary.LittleEndian.PutUint64(vb[:], seq)
				if err := cl.Put(workers[i].key, vb[:]); err == nil {
					workers[i].acked = seq
				}
			}
		}(i)
	}

	time.Sleep(800 * time.Millisecond)
	victim := groups[1]
	// Semi-sync must be intact on the victim before the kill — that is
	// what makes zero loss a guarantee rather than luck.
	if got := victim.primary.n.Snap().SyncTimeouts; got != 0 {
		t.Fatalf("semi-sync degraded pre-kill (%d timeouts): audit premise broken", got)
	}
	victim.primary.kill()
	time.Sleep(200 * time.Millisecond)
	if err := victim.follower.n.Promote(); err != nil {
		t.Fatal(err)
	}

	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Fresh client for the audit: every group is reachable (the killed
	// primary's address fails over to the promoted follower in-group).
	audit, err := DialMap(context.Background(), m, ClientOptions{TCP: tcp.Options{MaxAttempts: 10}})
	if err != nil {
		t.Fatal(err)
	}
	defer audit.Close()
	for i := range workers {
		w := workers[i]
		if w.attempt == 0 {
			t.Fatalf("worker %d never ran", i)
		}
		v, ok, err := audit.Get(w.key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if w.acked > 0 {
				t.Errorf("shard %d: acked up to seq %d but key %d is gone — lost acked write",
					i, w.acked, w.key)
			}
			continue
		}
		seq := binary.LittleEndian.Uint64(v)
		if seq < w.acked || seq > w.attempt {
			t.Errorf("shard %d: surviving seq %d outside [acked %d, attempted %d]",
				i, seq, w.acked, w.attempt)
		}
		t.Logf("shard %d: key %d surviving seq %d (acked %d, attempted %d)",
			i, w.key, seq, w.acked, w.attempt)
	}
	if !victim.follower.n.AllowWrite() {
		t.Error("promoted follower does not accept writes")
	}

	// CI artifact: per-shard metrics of each group's serving node.
	if dir := os.Getenv("FLATSTORE_CLUSTER_SNAPSHOT"); dir != "" {
		for i, g := range groups {
			mem := g.primary
			if mem.killed {
				mem = g.follower
			}
			snap := mem.srv.Metrics()
			path := filepath.Join(dir, fmt.Sprintf("shard-%d.prom", i))
			fh, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			obs.WritePrometheus(fh, &snap)
			if err := fh.Close(); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("per-shard metrics snapshots written to %s", dir)
	}
}

package cluster

import (
	"fmt"
	"sync"
)

// Gate is the server side of the shard map: the tcp.Server consults it
// on every keyed op and rejects keys this node does not own with
// StatusWrongShard plus the encoded map hint, so a client routing on a
// stale map self-heals instead of silently writing a key to the wrong
// group (where no scan or re-route would ever find it again).
//
// It implements tcp.ShardGate. The map is swappable (SetMap) so an
// operator can push new membership to a live server; routing stays a
// pure function of (key, map version) throughout.
type Gate struct {
	shardID int

	mu   sync.RWMutex
	m    *Map
	hint []byte // cached encoded hint of the current map
}

// NewGate creates a gate for the shard this server owns. The shard ID
// must exist in the map.
func NewGate(m *Map, shardID int) (*Gate, error) {
	if _, ok := m.ShardByID(shardID); !ok {
		return nil, fmt.Errorf("cluster: shard id %d not in map (shards: %d)", shardID, m.NumShards())
	}
	return &Gate{shardID: shardID, m: m, hint: m.Hint()}, nil
}

// Owns reports whether this server's shard owns key under the current
// map.
func (g *Gate) Owns(key uint64) bool {
	g.mu.RLock()
	m := g.m
	g.mu.RUnlock()
	return m.ShardOf(key) == g.shardID
}

// Hint returns the encoded shard-map hint carried in StatusWrongShard
// redirects. The slice is shared and must not be mutated.
func (g *Gate) Hint() []byte {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.hint
}

// ShardID reports the shard this server owns.
func (g *Gate) ShardID() int { return g.shardID }

// MapVersion reports the current map's version.
func (g *Gate) MapVersion() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.m.version
}

// NumShards reports the current map's shard count.
func (g *Gate) NumShards() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.m.NumShards()
}

// SetMap swaps in a newer map (ignored unless its version is higher).
func (g *Gate) SetMap(m *Map) {
	g.mu.Lock()
	if m.version > g.m.version {
		g.m = m
		g.hint = m.Hint()
	}
	g.mu.Unlock()
}

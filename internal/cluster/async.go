package cluster

// Pipelined asynchronous API over the sharded cluster — the fan-out
// analogue of the tcp client's Submit/Poll (tcp/pipeline.go). Each
// shard group keeps its own in-flight window (Options.Window on the
// per-group tcp.Client), so a cluster client can hold
// NumShards × Window requests on the wire: depth per shard is what
// feeds each server's horizontal batching, and the per-shard windows
// fill independently — a slow shard back-pressures only submissions
// routed to it.
//
// A cluster Ticket wraps the underlying group submission and adds the
// WrongShard self-heal: a submission rejected by a server routing on a
// newer map adopts that map and replays against the new owner before
// the ticket completes, so the caller sees one completion with the
// final outcome.

import (
	"context"
	"errors"
	"sync/atomic"
)

// Ticket is one in-flight cluster submission. Reap it with Wait or
// Poll — each completion is delivered exactly once across both.
type Ticket struct {
	c      *Client
	key    uint64
	done   chan struct{}
	val    []byte // Get result
	ok     bool   // Get: found; Delete: existed
	err    error
	reaped atomic.Bool
}

// Key returns the key the submission targets.
func (t *Ticket) Key() uint64 { return t.key }

// Done reports completion without reaping the ticket.
func (t *Ticket) Done() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Err returns the submission's outcome, or tcp.ErrInFlight before
// completion.
func (t *Ticket) Err() error {
	if !t.Done() {
		return errInFlight
	}
	return t.err
}

// errInFlight mirrors tcp.ErrInFlight for the cluster ticket.
var errInFlight = errors.New("cluster: ticket still in flight")

// Value returns a completed Get's result; ok is false while in flight,
// on error, or when the key was absent.
func (t *Ticket) Value() ([]byte, bool) {
	if !t.Done() || t.err != nil {
		return nil, false
	}
	return t.val, t.ok
}

// Existed reports whether a completed Delete's key was present.
func (t *Ticket) Existed() bool {
	return t.Done() && t.err == nil && t.ok
}

// reap delivers the completion exactly once (same CAS-under-compMu
// protocol as the tcp ticket).
func (t *Ticket) reap() bool {
	t.c.compMu.Lock()
	won := t.reaped.CompareAndSwap(false, true)
	if won {
		delete(t.c.comp, t)
	}
	t.c.compMu.Unlock()
	return won
}

// Wait blocks until the ticket completes (reaping it) or ctx fires.
func (t *Ticket) Wait(ctx context.Context) error {
	select {
	case <-t.done:
		t.reap()
		return t.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Poll reaps up to max completed tickets (max <= 0: every one that is
// ready) without blocking.
func (c *Client) Poll(max int) []*Ticket {
	c.compMu.Lock()
	var ready []*Ticket
	for t := range c.comp {
		if max > 0 && len(ready) >= max {
			break
		}
		ready = append(ready, t)
	}
	c.compMu.Unlock()
	out := ready[:0]
	for _, t := range ready {
		if t.reap() {
			out = append(out, t)
		}
	}
	return out
}

// submitKind discriminates the async op types.
type submitKind uint8

const (
	kindPut submitKind = iota
	kindGet
	kindDelete
)

// SubmitPut queues an asynchronous durable Put on the owning shard. It
// blocks while that shard group's window is full. The caller must not
// modify value until the ticket completes: retries and re-routes
// re-send it.
func (c *Client) SubmitPut(ctx context.Context, key uint64, value []byte) (*Ticket, error) {
	return c.submit(ctx, kindPut, key, value)
}

// SubmitGet queues an asynchronous Get on the owning shard.
func (c *Client) SubmitGet(ctx context.Context, key uint64) (*Ticket, error) {
	return c.submit(ctx, kindGet, key, nil)
}

// SubmitDelete queues an asynchronous Delete on the owning shard.
func (c *Client) SubmitDelete(ctx context.Context, key uint64) (*Ticket, error) {
	return c.submit(ctx, kindDelete, key, nil)
}

// submit routes the op to its owning group, posts it into that group's
// pipelined window (blocking there if the window is full — routing
// happens first, so only the owning shard back-pressures), and follows
// the completion on a goroutine that absorbs WrongShard redirects.
func (c *Client) submit(ctx context.Context, kind submitKind, key uint64, value []byte) (*Ticket, error) {
	c.ops.Add(1)
	inner, err := c.submitGroup(ctx, kind, key, value)
	if err != nil {
		return nil, err
	}
	c.inflight.Add(1)
	t := &Ticket{c: c, key: key, done: make(chan struct{})}
	go c.follow(ctx, t, inner, kind, key, value)
	return t, nil
}

// InFlight reports the cluster submissions posted but not yet
// completed, summed over every shard group's window.
func (c *Client) InFlight() int { return int(c.inflight.Load()) }

// innerTicket is the part of tcp.Ticket the follower needs (it is
// exactly tcp.Ticket; the interface keeps follow testable).
type innerTicket interface {
	Wait(ctx context.Context) error
	Value() ([]byte, bool)
	Existed() bool
}

// submitGroup posts one submission into the owning group's window.
func (c *Client) submitGroup(ctx context.Context, kind submitKind, key uint64, value []byte) (innerTicket, error) {
	cl, id, err := c.connForKey(ctx, key)
	if err != nil {
		return nil, err
	}
	c.countShard(id, 1)
	switch kind {
	case kindPut:
		return cl.SubmitPut(ctx, key, value)
	case kindGet:
		return cl.SubmitGet(ctx, key)
	default:
		return cl.SubmitDelete(ctx, key)
	}
}

// follow waits for the group submission, chasing WrongShard redirects
// (adopt the hinted map, resubmit to the new owner) before completing
// the cluster ticket and publishing it for Poll.
func (c *Client) follow(ctx context.Context, t *Ticket, inner innerTicket, kind submitKind, key uint64, value []byte) {
	err := inner.Wait(ctx)
	for attempt := 0; c.shouldReroute(err, attempt); attempt++ {
		var next innerTicket
		next, err = c.submitGroup(ctx, kind, key, value)
		if err != nil {
			break
		}
		inner = next
		err = inner.Wait(ctx)
	}
	t.err = err
	if err == nil {
		switch kind {
		case kindGet:
			t.val, t.ok = inner.Value()
		case kindDelete:
			t.ok = inner.Existed()
		}
	}
	c.inflight.Add(-1)
	close(t.done)
	c.compMu.Lock()
	if !t.reaped.Load() {
		c.comp[t] = struct{}{}
	}
	c.compMu.Unlock()
}

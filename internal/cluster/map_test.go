package cluster

import (
	"math/rand"
	"testing"
)

// testKeys draws a deterministic spread of keys: sequential (the common
// benchmark shape), random, and the edges.
func testKeys() []uint64 {
	rng := rand.New(rand.NewSource(42))
	keys := []uint64{0, 1, 2, ^uint64(0), ^uint64(0) - 1}
	for i := 0; i < 2000; i++ {
		keys = append(keys, uint64(i))
		keys = append(keys, rng.Uint64())
	}
	return keys
}

// TestRoutingIgnoresMembershipOrder: the ring is a pure function of the
// shard-ID set, so enumerating the shards in any order must route every
// key identically.
func TestRoutingIgnoresMembershipOrder(t *testing.T) {
	a, err := NewMap(1, []Shard{
		{ID: 0, Addrs: []string{"h0:1"}},
		{ID: 1, Addrs: []string{"h1:1"}},
		{ID: 2, Addrs: []string{"h2:1"}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMap(1, []Shard{
		{ID: 2, Addrs: []string{"h2:1"}},
		{ID: 0, Addrs: []string{"h0:1"}},
		{ID: 1, Addrs: []string{"h1:1"}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys() {
		if a.ShardOf(k) != b.ShardOf(k) {
			t.Fatalf("key %d: order-dependent routing (%d vs %d)", k, a.ShardOf(k), b.ShardOf(k))
		}
	}
}

// TestRoutingIgnoresAddressesAndVersion: servers knowing only
// (shard-id, shard-count) route over the address-less UniformMap; it
// must agree with every full map over the same IDs, at any version.
func TestRoutingIgnoresAddressesAndVersion(t *testing.T) {
	full, err := NewMap(7, []Shard{
		{ID: 0, Addrs: []string{"h0:1", "h0:2"}},
		{ID: 1, Addrs: []string{"h1:1"}},
		{ID: 2, Addrs: []string{"h2:1"}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := UniformMap(1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys() {
		if full.ShardOf(k) != uni.ShardOf(k) {
			t.Fatalf("key %d: full map routes to %d, uniform map to %d",
				k, full.ShardOf(k), uni.ShardOf(k))
		}
	}
}

// TestRoutingStableAcrossRebuilds: rebuilding the same membership must
// never move a key.
func TestRoutingStableAcrossRebuilds(t *testing.T) {
	keys := testKeys()
	var want []int
	for rebuild := 0; rebuild < 5; rebuild++ {
		m, err := UniformMap(uint64(rebuild+1), 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = make([]int, len(keys))
			for i, k := range keys {
				want[i] = m.ShardOf(k)
			}
			continue
		}
		for i, k := range keys {
			if got := m.ShardOf(k); got != want[i] {
				t.Fatalf("rebuild %d moved key %d: %d -> %d", rebuild, k, want[i], got)
			}
		}
	}
}

// TestRingBalance: vnodes must keep the per-shard key share within a
// loose band of even (the consistent-hashing variance argument).
func TestRingBalance(t *testing.T) {
	const shards, samples = 4, 40_000
	m, err := UniformMap(1, shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < samples; i++ {
		counts[m.ShardOf(rng.Uint64())]++
	}
	even := samples / shards
	for id, n := range counts {
		if n < even/2 || n > even*2 {
			t.Errorf("shard %d owns %d of %d samples (even share %d): ring too lumpy",
				id, n, samples, even)
		}
	}
}

// TestHintRoundTrip: DecodeHint(Hint()) must reproduce the map —
// version, vnodes, membership, addresses, and routing.
func TestHintRoundTrip(t *testing.T) {
	m, err := NewMap(42, []Shard{
		{ID: 0, Addrs: []string{"h0:1", "h0:2"}},
		{ID: 1, Addrs: []string{"h1:1"}},
		{ID: 2, Addrs: nil}, // address-less shard survives too
	}, 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHint(m.Hint())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != 42 || got.Vnodes() != 32 || got.NumShards() != 3 {
		t.Fatalf("round trip lost header: v%d vnodes %d shards %d",
			got.Version(), got.Vnodes(), got.NumShards())
	}
	for i, s := range m.Shards() {
		g := got.Shards()[i]
		if g.ID != s.ID || len(g.Addrs) != len(s.Addrs) {
			t.Fatalf("shard %d: %+v != %+v", i, g, s)
		}
		for j := range s.Addrs {
			if g.Addrs[j] != s.Addrs[j] {
				t.Fatalf("shard %d addr %d: %q != %q", i, j, g.Addrs[j], s.Addrs[j])
			}
		}
	}
	for _, k := range testKeys() {
		if m.ShardOf(k) != got.ShardOf(k) {
			t.Fatalf("key %d routed differently after hint round trip", k)
		}
	}
	// Corrupted hints must be rejected, not mis-decoded.
	h := m.Hint()
	for _, cut := range []int{1, 4, len(h) / 2, len(h) - 1} {
		if _, err := DecodeHint(h[:cut]); err == nil {
			t.Errorf("truncated hint (%d bytes) decoded", cut)
		}
	}
	if _, err := DecodeHint(append(append([]byte{}, h...), 0)); err == nil {
		t.Error("over-long hint decoded")
	}
}

// TestSpecRoundTrip: ParseSpec and Spec invert each other.
func TestSpecRoundTrip(t *testing.T) {
	spec := "h1:7399,h2:7399;h3:7399;h5:7399,h6:7399"
	m, err := ParseSpec(spec, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 3 {
		t.Fatalf("shards = %d", m.NumShards())
	}
	if got := m.Spec(); got != spec {
		t.Fatalf("Spec() = %q, want %q", got, spec)
	}
}

// TestMapValidation: the constructors reject maps that would split-brain
// routing.
func TestMapValidation(t *testing.T) {
	if _, err := NewMap(1, []Shard{{ID: 0}, {ID: 0}}, 0); err == nil {
		t.Error("duplicate shard IDs accepted")
	}
	if _, err := NewMap(1, nil, 0); err == nil {
		t.Error("empty map accepted")
	}
	if _, err := ParseSpec("", 1, 0); err == nil {
		t.Error("empty spec accepted")
	}
	m, err := UniformMap(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGate(m, 5); err == nil {
		t.Error("gate for a shard outside the map accepted")
	}
}

// TestGateOwnership: the gate agrees with the map and only swaps to
// strictly newer versions.
func TestGateOwnership(t *testing.T) {
	m, err := UniformMap(2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGate(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys()[:500] {
		if g.Owns(k) != (m.ShardOf(k) == 1) {
			t.Fatalf("gate and map disagree on key %d", k)
		}
	}
	older, _ := UniformMap(1, 2, 0)
	g.SetMap(older)
	if g.MapVersion() != 2 || g.NumShards() != 3 {
		t.Fatal("gate regressed to an older map")
	}
	newer, _ := UniformMap(3, 4, 0)
	g.SetMap(newer)
	if g.MapVersion() != 3 || g.NumShards() != 4 {
		t.Fatal("gate did not adopt the newer map")
	}
}

// Package record defines the out-of-place value record format shared by
// the FlatStore engine and the baseline stores: a 4-byte little-endian
// length followed by the value bytes ("(v_len, value)" in §3.2). Records
// live in allocator data blocks; the on-PM length makes allocation sizes
// recoverable from a bare pointer, which the lazy-persist allocator's
// recovery depends on.
package record

import (
	"encoding/binary"

	"flatstore/internal/pmem"
)

// HeaderSize is the length prefix in bytes.
const HeaderSize = 4

// Size returns the allocation size needed for a value of vlen bytes.
func Size(vlen int) int { return HeaderSize + vlen }

// Write stores the record at off in the cache view (no flush).
func Write(a *pmem.Arena, off int64, value []byte) {
	mem := a.Mem()
	binary.LittleEndian.PutUint32(mem[off:], uint32(len(value)))
	copy(mem[off+HeaderSize:], value)
}

// Persist stores the record and makes it durable.
func Persist(f *pmem.Flusher, off int64, value []byte) {
	Write(f.Arena(), off, value)
	f.Flush(int(off), Size(len(value)))
	f.Fence()
}

// Len reads the record length at off.
func Len(a *pmem.Arena, off int64) int {
	return int(binary.LittleEndian.Uint32(a.Mem()[off:]))
}

// Read returns a copy of the record's value bytes.
func Read(a *pmem.Arena, off int64) []byte {
	n := Len(a, off)
	out := make([]byte, n)
	copy(out, a.Mem()[off+HeaderSize:off+HeaderSize+int64(n)])
	return out
}

// View returns the value bytes aliasing the arena (zero-copy read).
func View(a *pmem.Arena, off int64) []byte {
	n := Len(a, off)
	return a.Mem()[off+HeaderSize : off+HeaderSize+int64(n)]
}

// Package record defines the out-of-place value record format shared by
// the FlatStore engine and the baseline stores: a 4-byte little-endian
// length, a CRC32C of the value bytes, and the value itself
// ("(v_len, value)" in §3.2, hardened with a media-integrity checksum).
// Records live in allocator data blocks; the on-PM length makes
// allocation sizes recoverable from a bare pointer, which the
// lazy-persist allocator's recovery depends on, and the checksum lets
// recovery and the online scrubber detect at-rest bit rot in a value
// without trusting any volatile state.
package record

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"flatstore/internal/pmem"
)

// HeaderSize is the record header: u32 length + u32 CRC32C(value).
const HeaderSize = 8

// castagnoli is the CRC32C polynomial table — the same one the wire
// format and the OpLog batch trailers use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record whose header is implausible or whose value
// bytes fail the checksum.
var ErrCorrupt = errors.New("record: corrupt record")

// Size returns the allocation size needed for a value of vlen bytes.
func Size(vlen int) int { return HeaderSize + vlen }

// Write stores the record at off in the cache view (no flush).
func Write(a *pmem.Arena, off int64, value []byte) {
	mem := a.Mem()
	binary.LittleEndian.PutUint32(mem[off:], uint32(len(value)))
	binary.LittleEndian.PutUint32(mem[off+4:], crc32.Checksum(value, castagnoli))
	copy(mem[off+HeaderSize:], value)
}

// Persist stores the record and makes it durable.
func Persist(f *pmem.Flusher, off int64, value []byte) {
	Write(f.Arena(), off, value)
	f.Flush(int(off), Size(len(value)))
	f.Fence()
}

// Len reads the record length at off. The caller must have validated the
// record (Verify) or trust the pointer; for arbitrary pointers use
// LenBounded.
func Len(a *pmem.Arena, off int64) int {
	return int(binary.LittleEndian.Uint32(a.Mem()[off:]))
}

// LenBounded reads the record length at off, reporting ok=false instead
// of panicking when off is out of the arena or the stored length would
// run past its end — the defensive variant recovery and scrubbing use on
// pointers reconstructed from possibly-corrupt media.
func LenBounded(a *pmem.Arena, off int64) (n int, ok bool) {
	if off < 0 || off+HeaderSize > int64(a.Size()) {
		return 0, false
	}
	n = Len(a, off)
	if n < 0 || off+HeaderSize+int64(n) > int64(a.Size()) {
		return 0, false
	}
	return n, true
}

// Verify checks the record at off: header within bounds and value bytes
// matching the stored CRC32C. Returns ErrCorrupt on any mismatch.
func Verify(a *pmem.Arena, off int64) error {
	n, ok := LenBounded(a, off)
	if !ok {
		return ErrCorrupt
	}
	mem := a.Mem()
	want := binary.LittleEndian.Uint32(mem[off+4:])
	if crc32.Checksum(mem[off+HeaderSize:off+HeaderSize+int64(n)], castagnoli) != want {
		return ErrCorrupt
	}
	return nil
}

// Read returns a copy of the record's value bytes.
func Read(a *pmem.Arena, off int64) []byte {
	n := Len(a, off)
	out := make([]byte, n)
	copy(out, a.Mem()[off+HeaderSize:off+HeaderSize+int64(n)])
	return out
}

// View returns the value bytes aliasing the arena (zero-copy read).
func View(a *pmem.Arena, off int64) []byte {
	n := Len(a, off)
	return a.Mem()[off+HeaderSize : off+HeaderSize+int64(n)]
}

package record

import (
	"bytes"
	"testing"
	"testing/quick"

	"flatstore/internal/pmem"
)

func TestRoundtrip(t *testing.T) {
	a := pmem.New(pmem.ChunkSize)
	f := a.NewFlusher()
	val := []byte("the quick brown fox")
	Persist(f, 512, val)
	if Len(a, 512) != len(val) {
		t.Fatalf("Len = %d", Len(a, 512))
	}
	if !bytes.Equal(Read(a, 512), val) {
		t.Fatal("Read mismatch")
	}
	if !bytes.Equal(View(a, 512), val) {
		t.Fatal("View mismatch")
	}
}

func TestPersistSurvivesCrash(t *testing.T) {
	a := pmem.New(pmem.ChunkSize)
	f := a.NewFlusher()
	val := bytes.Repeat([]byte{0x7e}, 1000)
	Persist(f, 4096, val)
	b := a.Crash()
	if !bytes.Equal(Read(b, 4096), val) {
		t.Fatal("persisted record lost on crash")
	}
}

func TestWriteWithoutFlushIsVolatile(t *testing.T) {
	a := pmem.New(pmem.ChunkSize)
	Write(a, 256, []byte("volatile"))
	b := a.Crash()
	if Len(b, 256) != 0 {
		t.Fatal("unflushed record survived crash")
	}
}

func TestSize(t *testing.T) {
	if Size(0) != HeaderSize || Size(100) != HeaderSize+100 {
		t.Fatal("Size wrong")
	}
}

func TestViewAliasesArena(t *testing.T) {
	a := pmem.New(pmem.ChunkSize)
	Write(a, 512, []byte("abc"))
	v := View(a, 512)
	a.Mem()[512+HeaderSize] = 'x'
	if v[0] != 'x' {
		t.Fatal("View does not alias the arena")
	}
}

func TestQuickRoundtrip(t *testing.T) {
	a := pmem.New(pmem.ChunkSize)
	f := a.NewFlusher()
	check := func(val []byte, offRaw uint16) bool {
		off := int64(offRaw)*8 + 64
		if int(off)+Size(len(val)) > a.Size() {
			return true
		}
		Persist(f, off, val)
		return bytes.Equal(Read(a, off), val)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

package oplog

import "testing"

// The log entry codec sits on every persisted operation: a single
// allocation here multiplies across the whole write path, so the budget
// is pinned to exactly zero.

func TestAllocBudgetEncodeTo(t *testing.T) {
	val := make([]byte, 64)
	for i := range val {
		val[i] = byte(i)
	}
	e := &Entry{Op: OpPut, Version: 7, Key: 42, Inline: true, Value: val}
	buf := make([]byte, e.EncodedSize())
	if n := testing.AllocsPerRun(500, func() {
		e.EncodeTo(buf)
	}); n != 0 {
		t.Fatalf("EncodeTo: %v allocs/op, want 0", n)
	}

	out := &Entry{Op: OpPut, Version: 9, Key: 43, Ptr: 512}
	obuf := make([]byte, out.EncodedSize())
	if n := testing.AllocsPerRun(500, func() {
		out.EncodeTo(obuf)
	}); n != 0 {
		t.Fatalf("EncodeTo (out-of-place): %v allocs/op, want 0", n)
	}
}

func TestAllocBudgetDecode(t *testing.T) {
	val := make([]byte, 64)
	e := &Entry{Op: OpPut, Version: 7, Key: 42, Inline: true, Value: val}
	buf := make([]byte, e.EncodedSize())
	e.EncodeTo(buf)
	// Decode's Value aliases buf (documented), so decoding is free too.
	if n := testing.AllocsPerRun(500, func() {
		if _, _, err := Decode(buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Decode: %v allocs/op, want 0", n)
	}
}

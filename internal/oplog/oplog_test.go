package oplog

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"flatstore/internal/alloc"
	"flatstore/internal/pmem"
)

func TestEntryEncodedSize(t *testing.T) {
	ptr := &Entry{Op: OpPut, Key: 1, Ptr: 512}
	if ptr.EncodedSize() != 16 {
		t.Errorf("pointer entry size = %d, want 16", ptr.EncodedSize())
	}
	del := &Entry{Op: OpDelete, Key: 1}
	if del.EncodedSize() != 16 {
		t.Errorf("tombstone size = %d, want 16", del.EncodedSize())
	}
	for _, n := range []int{1, 7, 8, 9, 255, 256} {
		e := &Entry{Op: OpPut, Key: 1, Inline: true, Value: make([]byte, n)}
		want := 16 + (n+7)&^7
		if e.EncodedSize() != want {
			t.Errorf("inline(%d) size = %d, want %d", n, e.EncodedSize(), want)
		}
	}
}

func TestEntryRoundtripPtr(t *testing.T) {
	e := Entry{Op: OpPut, Version: 12345, Key: 0xfeedface, Ptr: 7 * 256}
	buf := make([]byte, 16)
	n := e.EncodeTo(buf)
	got, m, err := Decode(buf)
	if err != nil || m != n {
		t.Fatalf("decode: %v, size %d vs %d", err, m, n)
	}
	if got.Op != OpPut || got.Version != 12345 || got.Key != e.Key || got.Ptr != e.Ptr || got.Inline {
		t.Errorf("roundtrip mismatch: %+v", got)
	}
}

func TestEntryRoundtripInline(t *testing.T) {
	val := []byte("hello world")
	e := Entry{Op: OpPut, Version: 3, Key: 42, Inline: true, Value: val}
	buf := make([]byte, e.EncodedSize())
	e.EncodeTo(buf)
	got, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Inline || !bytes.Equal(got.Value, val) {
		t.Errorf("inline roundtrip mismatch: %+v", got)
	}
}

func TestEntryTombstone(t *testing.T) {
	e := Entry{Op: OpDelete, Version: 9, Key: 7}
	buf := make([]byte, 16)
	e.EncodeTo(buf)
	got, _, err := Decode(buf)
	if err != nil || got.Op != OpDelete || got.Version != 9 || got.Key != 7 {
		t.Fatalf("tombstone roundtrip: %+v err=%v", got, err)
	}
}

func TestVersionMasking(t *testing.T) {
	e := Entry{Op: OpPut, Version: VersionMask + 5, Key: 1, Ptr: 256}
	buf := make([]byte, 16)
	e.EncodeTo(buf)
	got, _, _ := Decode(buf)
	if got.Version != 4 {
		t.Errorf("version wrap: got %d, want 4", got.Version)
	}
}

func TestPackPtrPanics(t *testing.T) {
	for _, off := range []int64{1, 255, 300} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PackPtr(%d) did not panic", off)
				}
			}()
			PackPtr(off)
		}()
	}
}

func TestDecodePad(t *testing.T) {
	buf := make([]byte, 16)
	e, n, err := Decode(buf)
	if err != nil || e.Op != OpPad || n != 8 {
		t.Fatalf("pad decode: %+v n=%d err=%v", e, n, err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	// Pad op with non-zero high bits is corrupt.
	buf := make([]byte, 16)
	buf[3] = 0x10
	if _, _, err := Decode(buf); err == nil {
		t.Error("corrupt pad not detected")
	}
	// Truncated inline entry.
	e := Entry{Op: OpPut, Key: 1, Inline: true, Value: make([]byte, 100)}
	full := make([]byte, e.EncodedSize())
	e.EncodeTo(full)
	if _, _, err := Decode(full[:20]); err == nil {
		t.Error("truncated inline entry not detected")
	}
}

// Property: encode/decode roundtrip over random entries.
func TestQuickEntryRoundtrip(t *testing.T) {
	check := func(key uint64, ver uint32, inline bool, vlen uint16, ptrBlocks uint32) bool {
		e := Entry{Op: OpPut, Version: ver & VersionMask, Key: key}
		if inline {
			n := int(vlen)%MaxInline + 1
			e.Inline = true
			e.Value = make([]byte, n)
			for i := range e.Value {
				e.Value[i] = byte(i * 7)
			}
		} else {
			e.Ptr = int64(ptrBlocks) * 256
		}
		buf := make([]byte, e.EncodedSize()+8)
		n := e.EncodeTo(buf)
		got, m, err := Decode(buf)
		if err != nil || n != m {
			return false
		}
		if got.Op != e.Op || got.Version != e.Version || got.Key != e.Key || got.Inline != e.Inline {
			return false
		}
		if e.Inline {
			return bytes.Equal(got.Value, e.Value)
		}
		return got.Ptr == e.Ptr
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Log tests ---

func newTestLog(t *testing.T, nchunks int) (*Log, *pmem.Arena, *alloc.Allocator, *pmem.Flusher) {
	t.Helper()
	a := pmem.New((nchunks + 1) * pmem.ChunkSize)
	al := alloc.New(a, 1, nchunks, 1) // chunk 0 reserved for metadata
	f := a.NewFlusher()
	l, err := New(a, al, 0, f)
	if err != nil {
		t.Fatal(err)
	}
	return l, a, al, f
}

func TestLogAppendAndScan(t *testing.T) {
	l, _, _, f := newTestLog(t, 4)
	var want []Entry
	for i := 0; i < 10; i++ {
		e := &Entry{Op: OpPut, Version: uint32(i), Key: uint64(i), Ptr: int64(i+1) * 256}
		if _, err := l.Append(f, e); err != nil {
			t.Fatal(err)
		}
		want = append(want, *e)
	}
	var got []Entry
	if err := l.Scan(func(off int64, e Entry) bool {
		got = append(got, e)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || got[i].Version != want[i].Version || got[i].Ptr != want[i].Ptr {
			t.Errorf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestBatchIsCachelinePadded(t *testing.T) {
	l, _, _, f := newTestLog(t, 4)
	offs, err := l.AppendBatch(f, []*Entry{
		{Op: OpPut, Key: 1, Ptr: 256},
		{Op: OpPut, Key: 2, Ptr: 512},
		{Op: OpPut, Key: 3, Ptr: 768},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 3 {
		t.Fatalf("offs = %v", offs)
	}
	// 3 × 16 = 48 bytes → tail must advance to the next 64 B boundary.
	if l.Tail()%pmem.CachelineSize != 0 {
		t.Errorf("tail %d not cacheline-aligned after batch", l.Tail())
	}
	// The next batch must start on a fresh cacheline.
	offs2, _ := l.AppendBatch(f, []*Entry{{Op: OpPut, Key: 4, Ptr: 1024}})
	if offs2[0]%pmem.CachelineSize != 0 {
		t.Errorf("second batch starts mid-line at %d", offs2[0])
	}
}

func TestBatchFlushCost(t *testing.T) {
	l, _, _, f := newTestLog(t, 4)
	f.TakeEvents() // drain setup events
	entries := make([]*Entry, 16)
	for i := range entries {
		entries[i] = &Entry{Op: OpPut, Key: uint64(i), Ptr: int64(i+1) * 256}
	}
	if _, err := l.AppendBatch(f, entries); err != nil {
		t.Fatal(err)
	}
	ev := f.TakeEvents()
	// 16 entries × 16 B + 16 B trailer = 272 B = 5 lines, one flush call;
	// plus the tail pointer persist: 2 flush calls, 2 fences, 6 lines.
	// The integrity trailer costs one line of bandwidth but no extra
	// persist point.
	if ev.Flushes != 2 || ev.Fences != 2 {
		t.Errorf("batch cost: %+v (want 2 flushes, 2 fences)", ev)
	}
	if ev.Lines != 6 {
		t.Errorf("lines = %d, want 6 (5 batch+trailer + 1 tail)", ev.Lines)
	}
}

func TestChunkRoll(t *testing.T) {
	l, _, _, f := newTestLog(t, 4)
	// Fill beyond one chunk: each batch is one 256 B-value entry
	// (272 B encoded, padded to 320).
	val := make([]byte, 256)
	n := pmem.ChunkSize/300 + 10
	for i := 0; i < n; i++ {
		e := &Entry{Op: OpPut, Key: uint64(i), Inline: true, Value: val}
		if _, err := l.Append(f, e); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.Chunks()) < 2 {
		t.Fatal("log did not roll to a second chunk")
	}
	count := 0
	l.Scan(func(off int64, e Entry) bool { count++; return true })
	if count != n {
		t.Errorf("scanned %d entries across chunks, want %d", count, n)
	}
}

func TestScanStopsEarly(t *testing.T) {
	l, _, _, f := newTestLog(t, 4)
	for i := 0; i < 5; i++ {
		l.Append(f, &Entry{Op: OpPut, Key: uint64(i), Ptr: 256})
	}
	count := 0
	l.Scan(func(off int64, e Entry) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop scanned %d, want 2", count)
	}
}

func TestRecoverAfterCrash(t *testing.T) {
	l, a, _, f := newTestLog(t, 4)
	for i := 0; i < 20; i++ {
		l.Append(f, &Entry{Op: OpPut, Version: uint32(i), Key: uint64(i), Ptr: int64(i+1) * 256})
	}
	// An entry written but whose batch was never persisted: tail not
	// advanced, so it must not be recovered. Simulate by writing bytes
	// at the tail without appending.
	a.WriteUint64(int(l.Tail()), uint64(OpPut))

	crashed := a.Crash()
	al2 := alloc.New(crashed, 1, 4, 1)
	al2.BeginRecovery()
	l2, err := Recover(crashed, al2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	l2.Scan(func(off int64, e Entry) bool {
		if e.Key != uint64(count) {
			t.Errorf("recovered entry %d has key %d", count, e.Key)
		}
		count++
		return true
	})
	if count != 20 {
		t.Errorf("recovered %d entries, want 20", count)
	}
	al2.FinishRecovery()
	// Recovered log must accept new appends.
	f2 := crashed.NewFlusher()
	if _, err := l2.Append(f2, &Entry{Op: OpPut, Key: 99, Ptr: 256}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverMultiChunk(t *testing.T) {
	l, a, _, f := newTestLog(t, 6)
	val := make([]byte, 200)
	n := pmem.ChunkSize/220 + 100
	for i := 0; i < n; i++ {
		l.Append(f, &Entry{Op: OpPut, Key: uint64(i), Inline: true, Value: val})
	}
	if len(l.Chunks()) < 2 {
		t.Fatal("need multi-chunk log")
	}
	crashed := a.Crash()
	al2 := alloc.New(crashed, 1, 6, 1)
	al2.BeginRecovery()
	l2, err := Recover(crashed, al2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	l2.Scan(func(off int64, e Entry) bool { count++; return true })
	if count != n {
		t.Errorf("recovered %d entries, want %d", count, n)
	}
}

func TestSurvivorChunkAndLink(t *testing.T) {
	l, a, al, f := newTestLog(t, 6)
	for i := 0; i < 10; i++ {
		l.Append(f, &Entry{Op: OpPut, Version: 1, Key: uint64(i), Ptr: 256})
	}
	surv := []*Entry{
		{Op: OpPut, Version: 7, Key: 100, Ptr: 512},
		{Op: OpPut, Version: 8, Key: 101, Ptr: 768},
	}
	c, offs, err := l.WriteSurvivorChunk(f, surv)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 2 {
		t.Fatalf("offs = %v", offs)
	}
	l.LinkAtHead(f, c)
	if l.Chunks()[0] != c {
		t.Error("survivor not at head")
	}
	// Survivor entries must survive a crash (they were persisted).
	crashed := a.Crash()
	al2 := alloc.New(crashed, 1, 6, 1)
	al2.BeginRecovery()
	l2, err := Recover(crashed, al2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[uint64]bool{}
	l2.Scan(func(off int64, e Entry) bool { keys[e.Key] = true; return true })
	if !keys[100] || !keys[101] {
		t.Error("survivor entries lost after crash")
	}
	_ = al
}

func TestUnlinkChunk(t *testing.T) {
	l, a, al, f := newTestLog(t, 6)
	val := make([]byte, 200)
	for i := 0; len(l.Chunks()) < 3; i++ {
		l.Append(f, &Entry{Op: OpPut, Key: uint64(i), Inline: true, Value: val})
	}
	chunks := l.Chunks()
	victim := chunks[0]
	if err := l.Unlink(f, victim); err != nil {
		t.Fatal(err)
	}
	al.FreeRawChunk(victim, f)
	// Unlinking the tail chunk must fail.
	if err := l.Unlink(f, l.TailChunk()); err != ErrUnlinkTail {
		t.Errorf("unlink tail: err = %v", err)
	}
	// Crash + recover: victim's entries are gone, the rest survive.
	crashed := a.Crash()
	al2 := alloc.New(crashed, 1, 6, 1)
	al2.BeginRecovery()
	l2, err := Recover(crashed, al2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2.Chunks()) != len(chunks)-1 {
		t.Errorf("recovered %d chunks, want %d", len(l2.Chunks()), len(chunks)-1)
	}
}

func TestRecoverWithJournaledExtra(t *testing.T) {
	l, a, _, f := newTestLog(t, 6)
	l.Append(f, &Entry{Op: OpPut, Key: 1, Ptr: 256})
	// Survivor chunk persisted and journaled but crash before LinkAtHead.
	c, _, err := l.WriteSurvivorChunk(f, []*Entry{{Op: OpPut, Version: 5, Key: 42, Ptr: 512}})
	if err != nil {
		t.Fatal(err)
	}
	crashed := a.Crash()
	al2 := alloc.New(crashed, 1, 6, 1)
	al2.BeginRecovery()
	l2, err := Recover(crashed, al2, 0, []int64{c})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	l2.Scan(func(off int64, e Entry) bool {
		if e.Key == 42 && e.Version == 5 {
			found = true
		}
		return true
	})
	if !found {
		t.Error("journaled survivor chunk not scanned at recovery")
	}
}

func TestBatchTooLarge(t *testing.T) {
	l, _, _, f := newTestLog(t, 4)
	var entries []*Entry
	val := make([]byte, 256)
	for i := 0; i < pmem.ChunkSize/270+10; i++ {
		entries = append(entries, &Entry{Op: OpPut, Key: uint64(i), Inline: true, Value: val})
	}
	if _, err := l.AppendBatch(f, entries); err != ErrBatchTooLarge {
		t.Errorf("err = %v, want ErrBatchTooLarge", err)
	}
}

// Property: random mixes of batched appends always scan back in order
// with correct contents, across chunk rolls and crashes.
func TestQuickLogDurability(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := pmem.New(5 * pmem.ChunkSize)
		al := alloc.New(a, 1, 4, 1)
		f := a.NewFlusher()
		l, err := New(a, al, 0, f)
		if err != nil {
			return false
		}
		type rec struct {
			key uint64
			ver uint32
		}
		var acked []rec
		for i := 0; i < 50; i++ {
			n := 1 + rng.Intn(16)
			batch := make([]*Entry, n)
			for j := range batch {
				e := &Entry{Op: OpPut, Version: uint32(rng.Intn(1000)), Key: rng.Uint64()}
				if rng.Intn(2) == 0 {
					e.Inline = true
					e.Value = make([]byte, 1+rng.Intn(64))
				} else {
					e.Ptr = int64(1+rng.Intn(1000)) * 256
				}
				batch[j] = e
			}
			if _, err := l.AppendBatch(f, batch); err != nil {
				return false
			}
			for _, e := range batch {
				acked = append(acked, rec{e.Key, e.Version})
			}
		}
		crashed := a.Crash()
		al2 := alloc.New(crashed, 1, 4, 1)
		al2.BeginRecovery()
		l2, err := Recover(crashed, al2, 0, nil)
		if err != nil {
			return false
		}
		i := 0
		ok := true
		l2.Scan(func(off int64, e Entry) bool {
			if i >= len(acked) || e.Key != acked[i].key || e.Version != acked[i].ver {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(acked)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

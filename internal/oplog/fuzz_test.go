package oplog

import (
	"bytes"
	"testing"
)

// FuzzDecode hardens the log-entry decoder against arbitrary bytes: it
// must never panic or read out of bounds, and whatever it accepts must
// re-encode to the same size.
func FuzzDecode(f *testing.F) {
	seed := func(e Entry) {
		buf := make([]byte, e.EncodedSize())
		e.EncodeTo(buf)
		f.Add(buf)
	}
	seed(Entry{Op: OpPut, Version: 1, Key: 42, Ptr: 512})
	seed(Entry{Op: OpDelete, Version: 9, Key: 7})
	seed(Entry{Op: OpPut, Version: 3, Key: 1, Inline: true, Value: []byte("hello")})
	f.Add([]byte{})
	f.Add(make([]byte, 7))
	f.Add(bytes.Repeat([]byte{0xff}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		switch e.Op {
		case OpPad, OpEnd:
			return
		case OpPut, OpDelete:
			// Accepted entries must round-trip byte-for-byte over the
			// consumed prefix (canonical encoding), modulo inline
			// padding bytes the decoder ignores.
			re := make([]byte, e.EncodedSize())
			if e.EncodedSize() != n {
				t.Fatalf("EncodedSize %d != consumed %d", e.EncodedSize(), n)
			}
			e.EncodeTo(re)
			if e.Inline {
				// Padding after the value is not canonical; compare
				// the meaningful prefix only.
				meaning := HeaderSize + len(e.Value)
				if !bytes.Equal(re[:meaning], data[:meaning]) {
					t.Fatalf("roundtrip mismatch")
				}
			} else if !bytes.Equal(re, data[:n]) {
				t.Fatalf("roundtrip mismatch")
			}
		default:
			t.Fatalf("Decode returned invalid op %d", e.Op)
		}
	})
}

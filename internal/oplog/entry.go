// Package oplog implements FlatStore's compacted per-core operation log
// (§3.2). Log entries describe operations ("operation log" technique)
// instead of memory updates: a pointer-based entry is exactly 16 bytes, so
// four entries share a cacheline and sixteen share one 256 B device block,
// letting one flush persist an entire batch. Values up to 256 B are
// embedded directly in the entry; larger records live in the lazy-persist
// allocator and the entry carries a 40-bit pointer to them.
package oplog

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Op is the operation type recorded in a log entry.
type Op uint8

const (
	// OpPad marks padding inside a batch (a zero word); the scanner
	// skips it 8 bytes at a time.
	OpPad Op = 0
	// OpPut records an insert/update.
	OpPut Op = 1
	// OpDelete records a tombstone.
	OpDelete Op = 2
	// OpEnd marks the end of a chunk's valid data; the scanner follows
	// the chunk's next pointer.
	OpEnd Op = 3
)

// Entry layout (little-endian), following Figure 3 of the paper:
//
//	word0 bits 0..1   Op
//	      bit  2      Emd (value embedded)
//	      bits 3..23  Version (21 bits)
//	      bits 24..63 Ptr (40 bits, block address >> 8)  — Emd=0
//	                  or value length - 1 (8 bits)        — Emd=1
//	word1             Key (64 bits)
//	Emd=1: value bytes follow, padded to an 8-byte multiple.
const (
	// HeaderSize is the fixed portion of an entry (two 64-bit words).
	HeaderSize = 16
	// MaxInline is the largest value stored inside a log entry; bigger
	// values go through the allocator (256 B, matching the device block
	// size — §3.2).
	MaxInline = 256
	// VersionBits is the width of the version field.
	VersionBits = 21
	// VersionMask masks a version to its stored width.
	VersionMask = 1<<VersionBits - 1
	// PtrBits is the width of the packed pointer.
	PtrBits = 40
)

// ErrCorrupt reports an undecodable log entry.
var ErrCorrupt = errors.New("oplog: corrupt log entry")

// ErrChecksum reports a batch whose CRC32C trailer failed to verify —
// at-rest media corruption somewhere inside the batch or its trailer.
var ErrChecksum = errors.New("oplog: batch checksum mismatch")

// Batch trailer. Every persisted batch is followed by a 16-byte trailer
// that shares the entry word grid, so the 16-byte entry format itself is
// untouched while corruption becomes detectable at batch granularity:
//
//	word0 bits 0..1   OpEnd (3)
//	      bit  2      1 (distinguishes a trailer from the chunk end marker,
//	                  which is written with word0 == OpEnd exactly)
//	      bits 24..63 batch length in bytes (batch start → trailer start)
//	word1 bits 0..31  CRC32C over the batch bytes followed by word0's
//	                  8 encoded bytes (so a flipped length bit is caught
//	                  directly, not only by the shifted checksum window)
//	      bits 32..63 zero
const TrailerSize = HeaderSize

// castagnoli is the CRC32C table shared with the wire format and the
// value-record format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// IsTrailerWord reports whether a first entry word marks a batch trailer.
func IsTrailerWord(w0 uint64) bool {
	return Op(w0&3) == OpEnd && w0>>2&1 == 1
}

// PutTrailer writes the trailer for batch (the encoded batch bytes that
// precede it) into buf, which must have room for TrailerSize bytes.
func PutTrailer(buf, batch []byte) {
	w0 := uint64(OpEnd) | 1<<2 | uint64(len(batch))<<24
	putUint64(buf, w0)
	sum := crc32.Checksum(batch, castagnoli)
	sum = crc32.Update(sum, castagnoli, buf[:8])
	putUint64(buf[8:], uint64(sum))
}

// CheckTrailer verifies the trailer at buf against batch. It returns
// false on any mismatch: wrong marker, wrong recorded length, nonzero
// reserved bits, or checksum failure.
func CheckTrailer(buf, batch []byte) bool {
	if len(buf) < TrailerSize {
		return false
	}
	w0 := getUint64(buf)
	if !IsTrailerWord(w0) || w0>>3&VersionMask != 0 || int(w0>>24) != len(batch) {
		return false
	}
	w1 := getUint64(buf[8:])
	if w1>>32 != 0 {
		return false
	}
	sum := crc32.Checksum(batch, castagnoli)
	sum = crc32.Update(sum, castagnoli, buf[:8])
	return uint32(w1) == sum
}

// Entry is one decoded operation-log record.
type Entry struct {
	Op      Op
	Version uint32 // masked to VersionBits when encoded
	Key     uint64
	Inline  bool
	Value   []byte // inline value when Inline (1..256 bytes)
	Ptr     int64  // arena offset of the out-of-place record when !Inline
}

// PackPtr converts a 256-aligned arena offset into the 40-bit on-log form.
func PackPtr(off int64) uint64 {
	if off%256 != 0 {
		panic(fmt.Sprintf("oplog: pointer %d not 256-aligned", off))
	}
	p := uint64(off) >> 8
	if p >= 1<<PtrBits {
		panic(fmt.Sprintf("oplog: pointer %d exceeds 40 bits", off))
	}
	return p
}

// UnpackPtr reverses PackPtr.
func UnpackPtr(p uint64) int64 { return int64(p << 8) }

// EncodedSize returns the entry's on-log size, padded to 8 bytes.
func (e *Entry) EncodedSize() int {
	if !e.Inline {
		return HeaderSize
	}
	return HeaderSize + (len(e.Value)+7)&^7
}

// EncodeTo writes the entry into buf and returns the encoded size.
// buf must have room for EncodedSize bytes.
func (e *Entry) EncodeTo(buf []byte) int {
	var w0 uint64
	w0 = uint64(e.Op) & 3
	w0 |= uint64(e.Version&VersionMask) << 3
	if e.Inline {
		n := len(e.Value)
		if n < 1 || n > MaxInline {
			panic(fmt.Sprintf("oplog: inline value of %d bytes", n))
		}
		w0 |= 1 << 2
		w0 |= uint64(n-1) << 24
	} else if e.Op == OpPut {
		w0 |= PackPtr(e.Ptr) << 24
	}
	putUint64(buf, w0)
	putUint64(buf[8:], e.Key)
	size := HeaderSize
	if e.Inline {
		copy(buf[16:], e.Value)
		size = e.EncodedSize()
		// Zero the padding so scans of the cache view are stable.
		for i := 16 + len(e.Value); i < size; i++ {
			buf[i] = 0
		}
	}
	return size
}

// Decode parses an entry at the start of buf, returning the entry and its
// encoded size. For OpPad it returns size 8 (one zero word); for OpEnd,
// size HeaderSize. The returned Value aliases buf.
func Decode(buf []byte) (Entry, int, error) {
	if len(buf) < 8 {
		return Entry{}, 0, ErrCorrupt
	}
	w0 := getUint64(buf)
	op := Op(w0 & 3)
	if op == OpPad {
		if w0 != 0 {
			return Entry{}, 0, ErrCorrupt
		}
		return Entry{Op: OpPad}, 8, nil
	}
	if op == OpEnd {
		// End markers are written as exactly (OpEnd, 0); anything else
		// in those 16 bytes is corruption, and treating it as a marker
		// would silently truncate a recovery scan.
		if len(buf) < HeaderSize || w0 != uint64(OpEnd) || getUint64(buf[8:]) != 0 {
			return Entry{}, 0, ErrCorrupt
		}
		return Entry{Op: OpEnd}, HeaderSize, nil
	}
	if len(buf) < HeaderSize {
		return Entry{}, 0, ErrCorrupt
	}
	e := Entry{
		Op:      op,
		Version: uint32(w0 >> 3 & VersionMask),
		Key:     getUint64(buf[8:]),
	}
	if op == OpDelete {
		// Tombstones carry no payload: the embed flag and pointer/size
		// bits must be zero.
		if w0>>24 != 0 || w0>>2&1 == 1 {
			return Entry{}, 0, ErrCorrupt
		}
		return e, HeaderSize, nil
	}
	if w0>>2&1 == 1 {
		// Inline entries use only the 8-bit size field after the
		// version; higher bits must be zero.
		if w0>>32 != 0 {
			return Entry{}, 0, ErrCorrupt
		}
		n := int(w0>>24&0xff) + 1
		padded := (n + 7) &^ 7
		if len(buf) < HeaderSize+padded {
			return Entry{}, 0, ErrCorrupt
		}
		e.Inline = true
		e.Value = buf[16 : 16+n]
		return e, HeaderSize + padded, nil
	}
	if op == OpPut {
		e.Ptr = UnpackPtr(w0 >> 24)
	}
	return e, HeaderSize, nil
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

package oplog

import (
	"errors"
	"fmt"
	"sync"

	"flatstore/internal/alloc"
	"flatstore/internal/pmem"
)

const (
	// chunkMagic identifies a log chunk header (first word). The top 16
	// bits are distinct from the allocator's header magics so recovery
	// never confuses a log chunk with an allocator chunk.
	chunkMagic = 0x0C1B_0000_0000_0001

	// chunkHeader is the reserved space at the start of every log chunk:
	// word0 = magic, word1 = next chunk (absolute offset, 0 = none).
	chunkHeader = 64

	// endMarkerReserve keeps room for the OpEnd marker so a chunk can
	// always be terminated.
	endMarkerReserve = HeaderSize
)

// ErrBatchTooLarge reports a batch that cannot fit in a single log chunk.
var ErrBatchTooLarge = errors.New("oplog: batch exceeds chunk capacity")

// ErrUnlinkTail reports an attempt to unlink the active tail chunk.
var ErrUnlinkTail = errors.New("oplog: cannot unlink the tail chunk")

// Log is one core's operation log: a chain of 4 MB chunks with a persisted
// head pointer and tail pointer (both in an 16-byte metadata slot).
//
// Concurrency: the owning core appends; a background cleaner may link
// survivor chunks at the head and unlink victims. The chunk chain is
// protected by mu; AppendBatch itself is single-writer (only the owner
// core appends).
type Log struct {
	arena   *pmem.Arena
	al      *alloc.Allocator
	metaOff int

	mu        sync.Mutex
	chunks    []int64 // chain order; chunks[len-1] is the tail chunk
	tailChunk int64
	tailPos   int // next write offset within the tail chunk
}

// MetaSize is the persistent footprint of a log's metadata slot
// (head pointer + tail pointer).
const MetaSize = 16

// New creates an empty log whose metadata lives at metaOff, allocating the
// first chunk and persisting the chain.
func New(arena *pmem.Arena, al *alloc.Allocator, metaOff int, f *pmem.Flusher) (*Log, error) {
	l := &Log{arena: arena, al: al, metaOff: metaOff}
	c, err := al.AllocRawChunk()
	if err != nil {
		return nil, err
	}
	l.initChunk(c, 0, f)
	l.chunks = []int64{c}
	l.tailChunk = c
	l.tailPos = chunkHeader
	f.PersistUint64(metaOff, uint64(c))                       // head
	f.PersistUint64(metaOff+8, uint64(c)+uint64(chunkHeader)) // tail
	return l, nil
}

// initChunk writes and persists a chunk header.
func (l *Log) initChunk(off, next int64, f *pmem.Flusher) {
	l.arena.WriteUint64(int(off), chunkMagic)
	l.arena.WriteUint64(int(off)+8, uint64(next))
	f.Flush(int(off), 16)
	f.Fence()
}

// Head returns the first chunk of the chain.
func (l *Log) Head() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chunks[0]
}

// Tail returns the absolute offset of the next write position.
func (l *Log) Tail() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tailChunk + int64(l.tailPos)
}

// TailChunk returns the chunk currently being appended to.
func (l *Log) TailChunk() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tailChunk
}

// Chunks returns a snapshot of the chunk chain in order.
func (l *Log) Chunks() []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int64, len(l.chunks))
	copy(out, l.chunks)
	return out
}

// roll terminates the tail chunk with an OpEnd marker and starts a new
// one. The order of persists keeps every crash window recoverable: the
// marker and the new chunk's link become durable before the tail pointer
// ever advances into the new chunk.
func (l *Log) roll(f *pmem.Flusher) error {
	// 1. End marker in the old chunk.
	pos := int(l.tailChunk) + l.tailPos
	l.arena.WriteUint64(pos, uint64(OpEnd))
	l.arena.WriteUint64(pos+8, 0)
	f.Flush(pos, HeaderSize)
	f.Fence()
	// 2. Fresh chunk, linked from the old tail.
	c, err := l.al.AllocRawChunk()
	if err != nil {
		return err
	}
	l.initChunk(c, 0, f)
	f.PersistUint64(int(l.tailChunk)+8, uint64(c))
	l.mu.Lock()
	l.chunks = append(l.chunks, c)
	l.tailChunk = c
	l.tailPos = chunkHeader
	l.mu.Unlock()
	return nil
}

// AppendBatch encodes the entries contiguously at the tail, pads the batch
// to a cacheline boundary (§3.2 "Padding": adjacent batches must not share
// a line or the second flush stalls), persists the whole batch with a
// single flush+fence, and finally persists the tail pointer. It returns
// the absolute offset of each entry.
//
// Per batch this costs exactly two persist points — the batch lines and
// the tail pointer — regardless of how many entries the batch carries,
// which is the core of FlatStore's write-amortization argument.
func (l *Log) AppendBatch(f *pmem.Flusher, entries []*Entry) ([]int64, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	total := 0
	for _, e := range entries {
		total += e.EncodedSize()
	}
	if total > pmem.ChunkSize-chunkHeader-endMarkerReserve {
		return nil, ErrBatchTooLarge
	}
	if l.tailPos+total > pmem.ChunkSize-endMarkerReserve {
		if err := l.roll(f); err != nil {
			return nil, err
		}
	}
	mem := l.arena.Mem()
	start := l.tailPos
	pos := start
	offs := make([]int64, len(entries))
	for i, e := range entries {
		offs[i] = l.tailChunk + int64(pos)
		pos += e.EncodeTo(mem[int(l.tailChunk)+pos:])
	}
	// Pad to the next cacheline so the following batch starts on a fresh
	// line (avoids the repeated-flush-same-line stall).
	padded := (pos + pmem.CachelineSize - 1) &^ (pmem.CachelineSize - 1)
	if padded > pmem.ChunkSize-endMarkerReserve {
		padded = pos // end of chunk: roll will terminate it anyway
	}
	for i := int(l.tailChunk) + pos; i < int(l.tailChunk)+padded; i++ {
		mem[i] = 0
	}
	f.Flush(int(l.tailChunk)+start, padded-start)
	f.Fence()
	l.mu.Lock()
	l.tailPos = padded
	tail := l.tailChunk + int64(l.tailPos)
	// Persist the tail pointer under mu: the head pointer shares its
	// cacheline, and the cleaner persists that word (LinkAtHead/Unlink)
	// under mu — an unserialized flush would copy the line while the
	// other word is mid-store.
	f.PersistUint64(l.metaOff+8, uint64(tail))
	l.mu.Unlock()
	return offs, nil
}

// Append persists a single entry (a batch of one).
func (l *Log) Append(f *pmem.Flusher, e *Entry) (int64, error) {
	offs, err := l.AppendBatch(f, []*Entry{e})
	if err != nil {
		return 0, err
	}
	return offs[0], nil
}

// ValidChunkHeader reports whether off holds a log-chunk header. Crash
// recovery uses it to reject journal slots pointing at chunks that are
// not (or no longer) log chunks.
func ValidChunkHeader(arena *pmem.Arena, off int64) bool {
	return arena.ReadUint64(int(off)) == chunkMagic
}

// ScanChunk iterates the entries of one chunk. tail is the log's absolute
// tail: iteration stops there if the chunk contains it, otherwise at the
// OpEnd marker (or chunk end). fn returning false stops the scan early.
func ScanChunk(arena *pmem.Arena, chunkOff, tail int64, fn func(off int64, e Entry) bool) error {
	mem := arena.Mem()
	end := int(chunkOff) + pmem.ChunkSize
	if tail >= chunkOff && tail < chunkOff+pmem.ChunkSize {
		end = int(tail)
	}
	pos := int(chunkOff) + chunkHeader
	for pos < end {
		e, n, err := Decode(mem[pos:end])
		if err != nil {
			return fmt.Errorf("oplog: chunk %#x offset %d: %w", chunkOff, pos-int(chunkOff), err)
		}
		switch e.Op {
		case OpEnd:
			return nil
		case OpPad:
			pos += n
			continue
		}
		if !fn(int64(pos), e) {
			return nil
		}
		pos += n
	}
	return nil
}

// Scan iterates every entry of the log in chain order.
func (l *Log) Scan(fn func(off int64, e Entry) bool) error {
	tail := l.Tail()
	for _, c := range l.Chunks() {
		if err := ScanChunk(l.arena, c, tail, fn); err != nil {
			return err
		}
	}
	return nil
}

// WriteSurvivorChunk builds a fully persisted chunk holding the given
// entries (the log cleaner's output). The chunk is NOT linked into the
// chain yet — the caller journals it first and then calls LinkAtHead.
// Returns the chunk offset and each entry's absolute offset.
func (l *Log) WriteSurvivorChunk(f *pmem.Flusher, entries []*Entry) (int64, []int64, error) {
	total := 0
	for _, e := range entries {
		total += e.EncodedSize()
	}
	if total > pmem.ChunkSize-chunkHeader-endMarkerReserve {
		return 0, nil, ErrBatchTooLarge
	}
	c, err := l.al.AllocRawChunk()
	if err != nil {
		return 0, nil, err
	}
	mem := l.arena.Mem()
	l.arena.WriteUint64(int(c), chunkMagic)
	l.arena.WriteUint64(int(c)+8, 0)
	pos := chunkHeader
	offs := make([]int64, len(entries))
	for i, e := range entries {
		offs[i] = c + int64(pos)
		pos += e.EncodeTo(mem[int(c)+pos:])
	}
	l.arena.WriteUint64(int(c)+pos, uint64(OpEnd))
	l.arena.WriteUint64(int(c)+pos+8, 0)
	f.Flush(int(c), pos+HeaderSize)
	f.Fence()
	return c, offs, nil
}

// LinkAtHead inserts a (persisted) chunk at the head of the chain. Chain
// order does not affect correctness — recovery resolves entry age by
// version — so survivors go to the head, away from the appending tail.
func (l *Log) LinkAtHead(f *pmem.Flusher, c int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f.PersistUint64(int(c)+8, uint64(l.chunks[0]))
	f.PersistUint64(l.metaOff, uint64(c))
	l.chunks = append([]int64{c}, l.chunks...)
}

// Unlink removes a chunk from the chain, persisting the repaired link.
// The chunk itself is not freed — the caller returns it to the allocator.
func (l *Log) Unlink(f *pmem.Flusher, victim int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if victim == l.tailChunk {
		return ErrUnlinkTail
	}
	idx := -1
	for i, c := range l.chunks {
		if c == victim {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("oplog: chunk %#x not in chain", victim)
	}
	var next uint64
	if idx+1 < len(l.chunks) {
		next = uint64(l.chunks[idx+1])
	}
	if idx == 0 {
		f.PersistUint64(l.metaOff, next)
	} else {
		f.PersistUint64(int(l.chunks[idx-1])+8, next)
	}
	l.chunks = append(l.chunks[:idx], l.chunks[idx+1:]...)
	return nil
}

// Recover rebuilds a Log from its persisted metadata after a restart.
// extra lists journaled survivor chunks that may not be linked yet; any of
// them not already in the chain are prepended (their entries carry
// versions, so order is immaterial). Every chunk is re-marked as in use
// with the allocator.
func Recover(arena *pmem.Arena, al *alloc.Allocator, metaOff int, extra []int64) (*Log, error) {
	head := int64(arena.ReadUint64(metaOff))
	tail := int64(arena.ReadUint64(metaOff + 8))
	l := &Log{arena: arena, al: al, metaOff: metaOff}

	seen := map[int64]bool{}
	for c := head; c != 0; {
		if seen[c] {
			return nil, fmt.Errorf("oplog: chunk chain cycle at %#x", c)
		}
		if magic := arena.ReadUint64(int(c)); magic != chunkMagic {
			return nil, fmt.Errorf("oplog: bad chunk magic %#x at %#x", magic, c)
		}
		seen[c] = true
		l.chunks = append(l.chunks, c)
		if tail >= c && tail < c+pmem.ChunkSize {
			// The tail chunk is by construction the last chunk
			// holding acknowledged data; ignore any chunk linked
			// beyond it (an unacknowledged roll).
			break
		}
		c = int64(arena.ReadUint64(int(c) + 8))
	}
	if len(l.chunks) == 0 {
		return nil, errors.New("oplog: empty chain")
	}
	last := l.chunks[len(l.chunks)-1]
	if tail < last+chunkHeader || tail > last+pmem.ChunkSize {
		return nil, fmt.Errorf("oplog: tail %#x outside tail chunk %#x", tail, last)
	}
	for _, c := range extra {
		if !seen[c] && arena.ReadUint64(int(c)) == chunkMagic {
			l.chunks = append([]int64{c}, l.chunks...)
			seen[c] = true
		}
	}
	for c := range seen {
		al.RecoverMarkRawChunk(c)
	}
	l.tailChunk = last
	l.tailPos = int(tail - last)
	return l, nil
}

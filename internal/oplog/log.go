package oplog

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"flatstore/internal/alloc"
	"flatstore/internal/pmem"
)

const (
	// chunkMagic identifies a log chunk header (first word). The top 16
	// bits are distinct from the allocator's header magics so recovery
	// never confuses a log chunk with an allocator chunk.
	chunkMagic = 0x0C1B_0000_0000_0001

	// chunkHeader is the reserved space at the start of every log chunk:
	// word0 = magic, word1 = next chunk (absolute offset, 0 = none).
	chunkHeader = 64

	// endMarkerReserve keeps room for the OpEnd marker so a chunk can
	// always be terminated.
	endMarkerReserve = HeaderSize
)

// ErrBatchTooLarge reports a batch that cannot fit in a single log chunk.
var ErrBatchTooLarge = errors.New("oplog: batch exceeds chunk capacity")

// ErrUnlinkTail reports an attempt to unlink the active tail chunk.
var ErrUnlinkTail = errors.New("oplog: cannot unlink the tail chunk")

// Log is one core's operation log: a chain of 4 MB chunks with a persisted
// head pointer and tail pointer (in a checksummed 24-byte metadata slot).
//
// Concurrency: the owning core appends; a background cleaner may link
// survivor chunks at the head and unlink victims. The chunk chain is
// protected by mu; AppendBatch itself is single-writer (only the owner
// core appends).
type Log struct {
	arena   *pmem.Arena
	al      *alloc.Allocator
	metaOff int

	mu        sync.Mutex
	chunks    []int64 // chain order; chunks[len-1] is the tail chunk
	tailChunk int64
	tailPos   int // next write offset within the tail chunk

	// Append's batch-of-one scratch. Owned by the appending core (Append
	// and AppendBatch are single-writer), so reuse needs no lock.
	oneEnt [1]*Entry
	oneOff [1]int64
	// lastBatch is the persisted size of the most recent batch (entries +
	// trailer + cacheline pad), read back by the appending core for batch
	// metrics. Owned by the appender, like the scratch above.
	lastBatch int
	// metaSum scratch, guarded by mu like the meta slot itself.
	sumBuf [16]byte
}

// MetaSize is the persistent footprint of a log's metadata slot:
// word0 head pointer, word1 tail pointer, word2 CRC32C over the first
// two words. The checksum lets recovery tell a rotted head/tail apart
// from a healthy one; all three words share one cacheline, so keeping it
// current costs no extra persist point.
const MetaSize = 24

// metaSum computes the metadata slot checksum. The scratch is caller
// provided because a local array escapes into crc32.Checksum and would
// cost a heap allocation on every meta persist — i.e. on every batch.
func metaSum(b *[16]byte, head, tail uint64) uint64 {
	putUint64(b[:8], head)
	putUint64(b[8:], tail)
	return uint64(crc32.Checksum(b[:], castagnoli))
}

// MetaOK reports whether the metadata slot at metaOff passes its
// checksum. A mismatch means the slot is torn (a crash mid-flush) or
// rotted; the head/tail values may still be structurally usable.
func MetaOK(arena *pmem.Arena, metaOff int) bool {
	head := arena.ReadUint64(metaOff)
	tail := arena.ReadUint64(metaOff + 8)
	var b [16]byte
	return arena.ReadUint64(metaOff+16) == metaSum(&b, head, tail)
}

// persistMetaLocked writes head, tail and their checksum and persists the
// slot with one flush. Callers hold l.mu (or own the log exclusively).
func (l *Log) persistMetaLocked(f *pmem.Flusher) {
	head := uint64(l.chunks[0])
	tail := uint64(l.tailChunk) + uint64(l.tailPos)
	l.arena.WriteUint64(l.metaOff, head)
	l.arena.WriteUint64(l.metaOff+8, tail)
	l.arena.WriteUint64(l.metaOff+16, metaSum(&l.sumBuf, head, tail))
	f.Flush(l.metaOff, MetaSize)
	f.Fence()
}

// RepairMeta rewrites the metadata slot from the in-memory chain state —
// salvage uses it to heal a slot whose checksum failed but whose pointers
// validated structurally.
func (l *Log) RepairMeta(f *pmem.Flusher) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.persistMetaLocked(f)
}

// New creates an empty log whose metadata lives at metaOff, allocating the
// first chunk and persisting the chain.
func New(arena *pmem.Arena, al *alloc.Allocator, metaOff int, f *pmem.Flusher) (*Log, error) {
	l := &Log{arena: arena, al: al, metaOff: metaOff}
	c, err := al.AllocRawChunk()
	if err != nil {
		return nil, err
	}
	l.initChunk(c, 0, f)
	l.chunks = []int64{c}
	l.tailChunk = c
	l.tailPos = chunkHeader
	l.persistMetaLocked(f)
	return l, nil
}

// initChunk writes and persists a chunk header.
func (l *Log) initChunk(off, next int64, f *pmem.Flusher) {
	l.arena.WriteUint64(int(off), chunkMagic)
	l.arena.WriteUint64(int(off)+8, uint64(next))
	f.Flush(int(off), 16)
	f.Fence()
}

// Head returns the first chunk of the chain.
func (l *Log) Head() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chunks[0]
}

// Tail returns the absolute offset of the next write position.
func (l *Log) Tail() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tailChunk + int64(l.tailPos)
}

// TailChunk returns the chunk currently being appended to.
func (l *Log) TailChunk() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tailChunk
}

// Chunks returns a snapshot of the chunk chain in order.
func (l *Log) Chunks() []int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]int64, len(l.chunks))
	copy(out, l.chunks)
	return out
}

// Contains reports whether c is currently in the chain (the scrubber
// re-checks membership before attributing a corrupt region to live keys:
// a chunk unlinked and freed since the scan may have been reused).
func (l *Log) Contains(c int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ch := range l.chunks {
		if ch == c {
			return true
		}
	}
	return false
}

// roll terminates the tail chunk with an OpEnd marker and starts a new
// one. The order of persists keeps every crash window recoverable: the
// marker and the new chunk's link become durable before the tail pointer
// ever advances into the new chunk.
func (l *Log) roll(f *pmem.Flusher) error {
	// 1. End marker in the old chunk. A salvage-rebuilt tail can sit at
	// the exact chunk end, where no marker fits (or is needed — the
	// scanner stops at the chunk boundary).
	if l.tailPos+HeaderSize <= pmem.ChunkSize {
		pos := int(l.tailChunk) + l.tailPos
		l.arena.WriteUint64(pos, uint64(OpEnd))
		l.arena.WriteUint64(pos+8, 0)
		f.Flush(pos, HeaderSize)
		f.Fence()
	}
	// 2. Fresh chunk, linked from the old tail.
	c, err := l.al.AllocRawChunk()
	if err != nil {
		return err
	}
	l.initChunk(c, 0, f)
	f.PersistUint64(int(l.tailChunk)+8, uint64(c))
	l.mu.Lock()
	l.chunks = append(l.chunks, c)
	l.tailChunk = c
	l.tailPos = chunkHeader
	l.mu.Unlock()
	return nil
}

// AppendBatch encodes the entries contiguously at the tail, appends the
// batch's CRC32C trailer, pads to a cacheline boundary (§3.2 "Padding":
// adjacent batches must not share a line or the second flush stalls),
// persists the whole batch with a single flush+fence, and finally
// persists the tail pointer. It returns the absolute offset of each
// entry.
//
// Per batch this costs exactly two persist points — the batch lines and
// the tail pointer — regardless of how many entries the batch carries,
// which is the core of FlatStore's write-amortization argument. The
// 16-byte trailer rides inside the batch flush, so integrity coverage
// adds bytes but no persist points.
func (l *Log) AppendBatch(f *pmem.Flusher, entries []*Entry) ([]int64, error) {
	return l.AppendBatchOffs(f, entries, nil)
}

// AppendBatchOffs is AppendBatch appending the entry offsets to offs
// (usually a recycled per-core scratch slice), returning the extended
// slice. On error the returned slice is offs unchanged.
func (l *Log) AppendBatchOffs(f *pmem.Flusher, entries []*Entry, offs []int64) ([]int64, error) {
	if len(entries) == 0 {
		return offs, nil
	}
	total := 0
	for _, e := range entries {
		total += e.EncodedSize()
	}
	if total+TrailerSize > pmem.ChunkSize-chunkHeader-endMarkerReserve {
		return offs, ErrBatchTooLarge
	}
	if l.tailPos+total+TrailerSize > pmem.ChunkSize-endMarkerReserve {
		if err := l.roll(f); err != nil {
			return offs, err
		}
	}
	mem := l.arena.Mem()
	start := l.tailPos
	pos := start
	for _, e := range entries {
		offs = append(offs, l.tailChunk+int64(pos))
		pos += e.EncodeTo(mem[int(l.tailChunk)+pos:])
	}
	PutTrailer(mem[int(l.tailChunk)+pos:], mem[int(l.tailChunk)+start:int(l.tailChunk)+pos])
	pos += TrailerSize
	// Pad to the next cacheline so the following batch starts on a fresh
	// line (avoids the repeated-flush-same-line stall).
	padded := (pos + pmem.CachelineSize - 1) &^ (pmem.CachelineSize - 1)
	if padded > pmem.ChunkSize-endMarkerReserve {
		padded = pos // end of chunk: roll will terminate it anyway
	}
	for i := int(l.tailChunk) + pos; i < int(l.tailChunk)+padded; i++ {
		mem[i] = 0
	}
	f.Flush(int(l.tailChunk)+start, padded-start)
	f.Fence()
	l.lastBatch = padded - start
	l.mu.Lock()
	l.tailPos = padded
	// Persist the tail pointer (with the slot checksum) under mu: the head
	// pointer shares the metadata cacheline, and the cleaner persists that
	// word (LinkAtHead/Unlink) under mu — an unserialized flush would copy
	// the line while the other word is mid-store.
	l.persistMetaLocked(f)
	l.mu.Unlock()
	return offs, nil
}

// LastBatchBytes reports the persisted size of the most recent batch
// this log appended (entries, trailer, and cacheline padding — the bytes
// the flush actually covered). Owner core only, like AppendBatch.
func (l *Log) LastBatchBytes() int { return l.lastBatch }

// Append persists a single entry (a batch of one). Like AppendBatch it
// may only be called by the owning core, which lets it reuse the log's
// scratch arrays instead of allocating per call.
func (l *Log) Append(f *pmem.Flusher, e *Entry) (int64, error) {
	l.oneEnt[0] = e
	offs, err := l.AppendBatchOffs(f, l.oneEnt[:], l.oneOff[:0])
	l.oneEnt[0] = nil
	if err != nil {
		return 0, err
	}
	return offs[0], nil
}

// ValidChunkHeader reports whether off holds a log-chunk header. Crash
// recovery uses it to reject journal slots pointing at chunks that are
// not (or no longer) log chunks. Out-of-arena offsets are simply invalid,
// never a panic — the offset may come from corrupt media.
func ValidChunkHeader(arena *pmem.Arena, off int64) bool {
	if off < 0 || off%pmem.ChunkSize != 0 || off+8 > int64(arena.Size()) {
		return false
	}
	return arena.ReadUint64(int(off)) == chunkMagic
}

// batchEntry is one decoded entry buffered until its batch verifies.
type batchEntry struct {
	off int64
	e   Entry
}

// scanChunk is the batch-verifying walk shared by ScanChunk and
// SalvageChunk. Entries are buffered per batch and delivered to fn only
// after the batch's trailer checksum verifies; the first invalid batch
// (bad structure, undecodable entry, missing trailer, or checksum
// mismatch) stops the walk. It returns the absolute offset at which the
// walk stopped cleanly (the truncation-safe point), the error describing
// the invalidity (nil when the chunk scanned clean), and whether fn asked
// to stop early.
func scanChunk(arena *pmem.Arena, chunkOff, tail int64, fn func(off int64, e Entry) bool) (validEnd int64, batches int, err error, stopped bool) {
	mem := arena.Mem()
	end := int(chunkOff) + pmem.ChunkSize
	if tail >= chunkOff && tail < chunkOff+pmem.ChunkSize {
		end = int(tail)
	}
	pos := int(chunkOff) + chunkHeader
	corrupt := func(at int, cause error) (int64, int, error, bool) {
		return int64(at), batches, fmt.Errorf("oplog: chunk %#x offset %d: %w", chunkOff, at-int(chunkOff), cause), false
	}
	var batch []batchEntry
	for pos < end {
		if pos+8 > end {
			return corrupt(pos, ErrCorrupt)
		}
		w0 := getUint64(mem[pos:])
		if w0 == 0 {
			pos += 8 // inter-batch cacheline padding
			continue
		}
		if Op(w0&3) == OpEnd && !IsTrailerWord(w0) {
			// Chunk end marker; Decode validates its exact form.
			if _, _, derr := Decode(mem[pos:end]); derr != nil {
				return corrupt(pos, derr)
			}
			return int64(pos), batches, nil, false
		}
		// Start of a batch: buffer entries until its trailer verifies.
		start := pos
		batch = batch[:0]
		for {
			if pos+8 > end {
				return corrupt(start, ErrCorrupt)
			}
			w0 = getUint64(mem[pos:])
			if IsTrailerWord(w0) {
				if pos+TrailerSize > end || !CheckTrailer(mem[pos:pos+TrailerSize], mem[start:pos]) {
					return corrupt(start, ErrChecksum)
				}
				pos += TrailerSize
				break
			}
			e, n, derr := Decode(mem[pos:end])
			if derr != nil {
				return corrupt(start, derr)
			}
			if e.Op == OpPad || e.Op == OpEnd {
				// Padding or an end marker inside an unterminated batch:
				// the trailer never made it — treat the batch as invalid.
				return corrupt(start, ErrCorrupt)
			}
			batch = append(batch, batchEntry{off: int64(pos), e: e})
			pos += n
		}
		batches++
		for _, be := range batch {
			if !fn(be.off, be.e) {
				return int64(pos), batches, nil, true
			}
		}
	}
	return int64(pos), batches, nil, false
}

// ScanChunk iterates the entries of one chunk, verifying each batch's
// CRC32C trailer before delivering its entries. tail is the log's
// absolute tail: iteration stops there if the chunk contains it,
// otherwise at the OpEnd marker (or chunk end). fn returning false stops
// the scan early. Any structural corruption or checksum mismatch returns
// a typed error (wrapping ErrCorrupt or ErrChecksum); entries of an
// invalid batch are never delivered.
func ScanChunk(arena *pmem.Arena, chunkOff, tail int64, fn func(off int64, e Entry) bool) error {
	_, _, err, _ := scanChunk(arena, chunkOff, tail, fn)
	return err
}

// ChunkSalvage is the outcome of a salvage scan of one chunk.
type ChunkSalvage struct {
	// Entries is the number of entries delivered from verified batches.
	Entries int
	// Batches is the number of batches whose trailer checksum verified.
	Batches int
	// ValidEnd is the absolute offset where the verified walk stopped —
	// the end marker, the tail, the chunk end, or the first invalid batch.
	ValidEnd int64
	// CorruptAt is the absolute offset of the first invalid batch (the
	// log-truncation point), or -1 when the chunk scanned clean.
	CorruptAt int64
	// Err describes the invalidity when CorruptAt >= 0.
	Err error
	// Suspects holds a best-effort decode of the invalid region. The
	// bytes failed verification, so nothing in a suspect can be trusted —
	// salvage uses the keys only to quarantine, never to resurrect.
	Suspects []Entry
}

// SalvageChunk scans like ScanChunk but never fails: verified batches are
// delivered to fn, and on the first invalid batch the scan stops and the
// remainder of the chunk is harvested with SuspectScan for quarantine
// attribution.
func SalvageChunk(arena *pmem.Arena, chunkOff, tail int64, fn func(off int64, e Entry) bool) ChunkSalvage {
	res := ChunkSalvage{CorruptAt: -1}
	validEnd, batches, err, _ := scanChunk(arena, chunkOff, tail, func(off int64, e Entry) bool {
		res.Entries++
		return fn(off, e)
	})
	res.ValidEnd = validEnd
	res.Batches = batches
	if err == nil {
		return res
	}
	res.CorruptAt = validEnd
	res.Err = err
	end := chunkOff + int64(pmem.ChunkSize)
	if tail >= chunkOff && tail < end {
		end = tail
	}
	res.Suspects = SuspectScan(arena, validEnd, end)
	return res
}

// SuspectScan best-effort-decodes [lo, hi): it steps through the region
// collecting every plausibly decodable Put/Delete entry, resynchronizing
// on the 8-byte entry grid after undecodable words. The results are
// UNTRUSTED — a single flipped bit may have changed a key, a version, or
// the framing — and exist only so salvage can quarantine the keys whose
// acknowledged writes may have lived in the region.
func SuspectScan(arena *pmem.Arena, lo, hi int64) []Entry {
	mem := arena.Mem()
	if lo < 0 {
		lo = 0
	}
	if hi > int64(arena.Size()) {
		hi = int64(arena.Size())
	}
	var out []Entry
	for pos := lo; pos+8 <= hi; {
		e, n, err := Decode(mem[pos:hi])
		if err != nil {
			pos += 8
			continue
		}
		switch e.Op {
		case OpPut, OpDelete:
			out = append(out, e)
			pos += int64(n)
		case OpEnd:
			return out
		default: // OpPad
			pos += int64(n)
		}
	}
	return out
}

// OrphanSuspects harvests quarantine candidates from a log chunk that is
// not reachable from any chain. Salvage calls it when a chain broke: a
// chunk severed from its chain may hold the only copy of acknowledged
// writes, and the keys plausibly decoded from it must not be served from
// older state as if those writes never happened.
func OrphanSuspects(arena *pmem.Arena, chunkOff int64) []Entry {
	return SuspectScan(arena, chunkOff+chunkHeader, chunkOff+int64(pmem.ChunkSize))
}

// Scan iterates every entry of the log in chain order.
func (l *Log) Scan(fn func(off int64, e Entry) bool) error {
	tail := l.Tail()
	for _, c := range l.Chunks() {
		if err := ScanChunk(l.arena, c, tail, fn); err != nil {
			return err
		}
	}
	return nil
}

// WriteSurvivorChunk builds a fully persisted chunk holding the given
// entries (the log cleaner's output). The chunk is NOT linked into the
// chain yet — the caller journals it first and then calls LinkAtHead.
// Returns the chunk offset and each entry's absolute offset.
func (l *Log) WriteSurvivorChunk(f *pmem.Flusher, entries []*Entry) (int64, []int64, error) {
	total := 0
	for _, e := range entries {
		total += e.EncodedSize()
	}
	if total+TrailerSize > pmem.ChunkSize-chunkHeader-endMarkerReserve {
		return 0, nil, ErrBatchTooLarge
	}
	c, err := l.al.AllocRawChunk()
	if err != nil {
		return 0, nil, err
	}
	mem := l.arena.Mem()
	l.arena.WriteUint64(int(c), chunkMagic)
	l.arena.WriteUint64(int(c)+8, 0)
	pos := chunkHeader
	offs := make([]int64, len(entries))
	for i, e := range entries {
		offs[i] = c + int64(pos)
		pos += e.EncodeTo(mem[int(c)+pos:])
	}
	PutTrailer(mem[int(c)+pos:], mem[int(c)+chunkHeader:int(c)+pos])
	pos += TrailerSize
	l.arena.WriteUint64(int(c)+pos, uint64(OpEnd))
	l.arena.WriteUint64(int(c)+pos+8, 0)
	f.Flush(int(c), pos+HeaderSize)
	f.Fence()
	return c, offs, nil
}

// Truncate cuts the log at absolute offset at — the truncation-safe point
// a salvage scan reported — dropping every chunk linked after the one
// containing at and re-terminating that chunk as the new tail. The
// dropped chunks are returned so the caller can release them; they are
// NOT freed here. Used only during salvage recovery, before the store
// goes live.
func (l *Log) Truncate(f *pmem.Flusher, at int64) ([]int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := -1
	for i, c := range l.chunks {
		if at >= c+chunkHeader && at <= c+pmem.ChunkSize {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("oplog: truncate point %#x outside chain", at)
	}
	c := l.chunks[idx]
	dropped := make([]int64, len(l.chunks)-idx-1)
	copy(dropped, l.chunks[idx+1:])
	l.chunks = l.chunks[:idx+1]
	l.tailChunk = c
	l.tailPos = int(at - c)
	// Re-terminate the new tail chunk: an end marker over the start of the
	// invalid region (when there is room) and a cleared next link, so the
	// persisted chain no longer reaches the dropped chunks.
	if l.tailPos <= pmem.ChunkSize-endMarkerReserve {
		pos := int(c) + l.tailPos
		l.arena.WriteUint64(pos, uint64(OpEnd))
		l.arena.WriteUint64(pos+8, 0)
		f.Flush(pos, HeaderSize)
		f.Fence()
	}
	f.PersistUint64(int(c)+8, 0)
	l.persistMetaLocked(f)
	return dropped, nil
}

// LinkAtHead inserts a (persisted) chunk at the head of the chain. Chain
// order does not affect correctness — recovery resolves entry age by
// version — so survivors go to the head, away from the appending tail.
func (l *Log) LinkAtHead(f *pmem.Flusher, c int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f.PersistUint64(int(c)+8, uint64(l.chunks[0]))
	l.chunks = append([]int64{c}, l.chunks...)
	l.persistMetaLocked(f)
}

// Unlink removes a chunk from the chain, persisting the repaired link.
// The chunk itself is not freed — the caller returns it to the allocator.
func (l *Log) Unlink(f *pmem.Flusher, victim int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if victim == l.tailChunk {
		return ErrUnlinkTail
	}
	idx := -1
	for i, c := range l.chunks {
		if c == victim {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("oplog: chunk %#x not in chain", victim)
	}
	var next uint64
	if idx+1 < len(l.chunks) {
		next = uint64(l.chunks[idx+1])
	}
	if idx == 0 {
		l.chunks = l.chunks[1:]
		l.persistMetaLocked(f)
	} else {
		f.PersistUint64(int(l.chunks[idx-1])+8, next)
		l.chunks = append(l.chunks[:idx], l.chunks[idx+1:]...)
	}
	return nil
}

// ChainDamage records what salvage recovery had to repair (or could not)
// while rebuilding one log's chain.
type ChainDamage struct {
	// MetaSuspect: the metadata slot's checksum failed. Head and tail
	// still validated structurally and were used; a crash can tear the
	// slot legitimately, but rot in the tail word can silently hide the
	// newest batches, so salvage reports the suspicion.
	MetaSuspect bool
	// ChainTruncated: the chain walk hit a bad link (cycle or invalid
	// chunk header) and kept only the prefix.
	ChainTruncated bool
	// ChainLost: not even the first chunk was recoverable; the log is
	// gone and the caller must create a fresh one.
	ChainLost bool
	// TailRebuilt: the tail pointer was unusable (rot, or the chain broke
	// before the tail chunk); the whole last chunk is scanned and the
	// batch checksums decide where valid data ends.
	TailRebuilt bool
}

// Any reports whether any damage was observed.
func (d ChainDamage) Any() bool {
	return d.MetaSuspect || d.ChainTruncated || d.ChainLost || d.TailRebuilt
}

// Recover rebuilds a Log from its persisted metadata after a restart.
// extra lists journaled survivor chunks that may not be linked yet; any of
// them not already in the chain are prepended (their entries carry
// versions, so order is immaterial). Every chunk is re-marked as in use
// with the allocator.
//
// A metadata-slot checksum mismatch alone is NOT an error here: a crash
// between the tail-word store and the checksum store tears the slot
// legitimately, and head/tail are still validated structurally exactly as
// before the checksum existed. Only salvage mode acts on the suspicion.
func Recover(arena *pmem.Arena, al *alloc.Allocator, metaOff int, extra []int64) (*Log, error) {
	l, _, err := recoverLog(arena, al, metaOff, extra, false)
	return l, err
}

// RecoverSalvage is Recover that never fails: structural damage is
// repaired (prefix kept, tail rebuilt from batch checksums) and reported
// instead of returned as an error. A nil Log (with ChainLost set) means
// nothing was recoverable; the caller creates a fresh log after allocator
// recovery finishes.
func RecoverSalvage(arena *pmem.Arena, al *alloc.Allocator, metaOff int, extra []int64) (*Log, ChainDamage) {
	l, d, _ := recoverLog(arena, al, metaOff, extra, true)
	return l, d
}

func recoverLog(arena *pmem.Arena, al *alloc.Allocator, metaOff int, extra []int64, salvage bool) (*Log, ChainDamage, error) {
	var d ChainDamage
	head := int64(arena.ReadUint64(metaOff))
	tail := int64(arena.ReadUint64(metaOff + 8))
	if !MetaOK(arena, metaOff) {
		d.MetaSuspect = true
	}
	l := &Log{arena: arena, al: al, metaOff: metaOff}

	seen := map[int64]bool{}
	tailInChain := false
	for c := head; c != 0; {
		// The chain pointers come straight off (possibly corrupt) media:
		// bounds- and alignment-check before dereferencing.
		if seen[c] || !ValidChunkHeader(arena, c) {
			if !salvage {
				if seen[c] {
					return nil, d, fmt.Errorf("oplog: chunk chain cycle at %#x", c)
				}
				return nil, d, fmt.Errorf("oplog: bad chunk %#x in chain", c)
			}
			d.ChainTruncated = true
			break
		}
		seen[c] = true
		l.chunks = append(l.chunks, c)
		if tail >= c && tail < c+pmem.ChunkSize {
			// The tail chunk is by construction the last chunk
			// holding acknowledged data; ignore any chunk linked
			// beyond it (an unacknowledged roll).
			tailInChain = true
			break
		}
		c = int64(arena.ReadUint64(int(c) + 8))
	}
	if len(l.chunks) == 0 {
		if !salvage {
			return nil, d, errors.New("oplog: empty chain")
		}
		d.ChainLost = true
		return nil, d, nil
	}
	last := l.chunks[len(l.chunks)-1]
	switch {
	case tailInChain && tail >= last+chunkHeader:
		// Normal: the tail points into the last chain chunk.
	case !salvage:
		return nil, d, fmt.Errorf("oplog: tail %#x outside tail chunk %#x", tail, last)
	default:
		// The tail pointer is unusable (rot, or the chain broke before the
		// true tail chunk). Scan the whole last chunk; the batch trailers
		// decide where valid data ends, and the caller re-truncates there.
		d.TailRebuilt = true
		tailInChain = false
		tail = last + pmem.ChunkSize
	}
	for _, c := range extra {
		if !seen[c] && ValidChunkHeader(arena, c) {
			l.chunks = append([]int64{c}, l.chunks...)
			seen[c] = true
		}
	}
	for c := range seen {
		if !al.RecoverMarkRawChunk(c) {
			return nil, d, fmt.Errorf("oplog: chunk %#x outside allocator range", c)
		}
	}
	if tailInChain {
		// Chunks linked beyond the tail (an unacknowledged roll) are about
		// to be freed by FinishRecovery; clear their headers so a stale log
		// magic cannot make a freed chunk look like a salvageable orphan to
		// a future recovery.
		f := arena.NewFlusher()
		for c := int64(arena.ReadUint64(int(last) + 8)); c != 0 && !seen[c] && ValidChunkHeader(arena, c); {
			next := int64(arena.ReadUint64(int(c) + 8))
			f.PersistUint64(int(c), 0)
			seen[c] = true // cycle guard
			c = next
		}
		f.FlushEvents()
	}
	l.tailChunk = last
	l.tailPos = int(tail - last)
	return l, d, nil
}

package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flatstore/internal/pmem"
)

func newTestAlloc(t *testing.T, nchunks, ncores int) (*Allocator, *pmem.Arena, *pmem.Flusher) {
	t.Helper()
	a := pmem.New(nchunks * pmem.ChunkSize)
	al := New(a, 0, nchunks, ncores)
	return al, a, a.NewFlusher()
}

func TestClassIndex(t *testing.T) {
	cases := []struct {
		size, want int
	}{
		{1, 0}, {255, 0}, {256, 0}, {257, 1}, {512, 1}, {513, 2},
		{4096, 4}, {1 << 20, 12}, {1<<20 + 1, -1}, {64 << 20, -1},
	}
	for _, c := range cases {
		if got := classIndex(c.size); got != c.want {
			t.Errorf("classIndex(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if ClassSize(0) != 256 || ClassSize(12) != 1<<20 {
		t.Error("ClassSize endpoints wrong")
	}
}

func TestClassIndexPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	classIndex(0)
}

func TestAllocAlignmentAndPtrPacking(t *testing.T) {
	al, _, f := newTestAlloc(t, 8, 1)
	ca := al.Core(0)
	for _, size := range []int{1, 100, 256, 300, 1000, 4096, 100000} {
		off, err := ca.Alloc(size, f)
		if err != nil {
			t.Fatal(err)
		}
		if off%256 != 0 {
			t.Errorf("Alloc(%d) = %d, not 256-aligned", size, off)
		}
		// Must be packable into a 40-bit pointer (addr >> 8).
		if off>>8 >= 1<<40 {
			t.Errorf("Alloc(%d) = %d exceeds 40-bit ptr range", size, off)
		}
	}
}

func TestAllocDistinctBlocks(t *testing.T) {
	al, _, f := newTestAlloc(t, 2, 1)
	ca := al.Core(0)
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		off, err := ca.Alloc(300, f)
		if err != nil {
			t.Fatal(err)
		}
		if seen[off] {
			t.Fatalf("block %d handed out twice", off)
		}
		seen[off] = true
	}
}

func TestCutPersistsHeaderButNotBitmap(t *testing.T) {
	al, arena, f := newTestAlloc(t, 2, 1)
	ca := al.Core(0)
	off, err := ca.Alloc(300, f)
	if err != nil {
		t.Fatal(err)
	}
	chunkBase := off &^ (pmem.ChunkSize - 1)
	// Header (class) must be persistent.
	if !arena.IsPersisted(int(chunkBase), 8) {
		t.Error("chunk class header not flushed at cut time")
	}
	// Bitmap must NOT have been flushed (lazy persist).
	after := arena.Crash()
	if after.Mem()[chunkBase+64] != 0 {
		t.Error("bitmap flushed eagerly; lazy-persist design violated")
	}
}

func TestFreeAndReuse(t *testing.T) {
	al, _, f := newTestAlloc(t, 2, 1)
	ca := al.Core(0)
	off1, _ := ca.Alloc(500, f)
	ca.Free(off1, 500, f)
	off2, _ := ca.Alloc(500, f)
	if off1 != off2 {
		t.Errorf("freed block not reused: %d then %d", off1, off2)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	al, _, f := newTestAlloc(t, 2, 1)
	ca := al.Core(0)
	off, _ := ca.Alloc(500, f)
	ca.Free(off, 500, f)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	ca.Free(off, 500, f)
}

func TestEmptyChunkRetired(t *testing.T) {
	al, _, f := newTestAlloc(t, 2, 1)
	ca := al.Core(0)
	before := al.FreeChunks()
	off, _ := ca.Alloc(300, f)
	if al.FreeChunks() != before-1 {
		t.Fatal("cut did not consume a chunk")
	}
	ca.Free(off, 300, f)
	if al.FreeChunks() != before {
		t.Error("empty chunk not returned to pool")
	}
}

func TestChunkExhaustion(t *testing.T) {
	al, _, f := newTestAlloc(t, 1, 1)
	ca := al.Core(0)
	var err error
	for i := 0; i < 1<<20; i++ {
		if _, err = ca.Alloc(1<<20, f); err != nil {
			break
		}
	}
	if err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestChunkFullRollsToNext(t *testing.T) {
	al, _, f := newTestAlloc(t, 3, 1)
	ca := al.Core(0)
	perChunk := (pmem.ChunkSize - headerReserve) / 256
	seen := map[int64]bool{}
	for i := 0; i < perChunk+10; i++ {
		off, err := ca.Alloc(256, f)
		if err != nil {
			t.Fatal(err)
		}
		if seen[off] {
			t.Fatal("duplicate block across chunk roll")
		}
		seen[off] = true
	}
}

func TestHugeAllocFree(t *testing.T) {
	al, _, f := newTestAlloc(t, 8, 1)
	ca := al.Core(0)
	before := al.FreeChunks()
	off, err := ca.Alloc(6<<20, f) // needs 2 chunks
	if err != nil {
		t.Fatal(err)
	}
	if al.FreeChunks() != before-2 {
		t.Errorf("huge alloc consumed %d chunks, want 2", before-al.FreeChunks())
	}
	ca.Free(off, 6<<20, f)
	if al.FreeChunks() != before {
		t.Error("huge free did not return chunks")
	}
}

func TestRawChunk(t *testing.T) {
	al, _, f := newTestAlloc(t, 4, 1)
	off, err := al.AllocRawChunk()
	if err != nil {
		t.Fatal(err)
	}
	if off%pmem.ChunkSize != 0 {
		t.Errorf("raw chunk at %d not chunk-aligned", off)
	}
	before := al.FreeChunks()
	al.FreeRawChunk(off, f)
	if al.FreeChunks() != before+1 {
		t.Error("raw chunk not returned")
	}
}

func TestPerCoreIsolation(t *testing.T) {
	al, _, f := newTestAlloc(t, 4, 2)
	off0, _ := al.Core(0).Alloc(300, f)
	off1, _ := al.Core(1).Alloc(300, f)
	// Different cores cut different chunks.
	if off0&^(pmem.ChunkSize-1) == off1&^(pmem.ChunkSize-1) {
		t.Error("two cores share a chunk")
	}
}

func TestCrashRecoveryRebuildsBitmaps(t *testing.T) {
	al, arena, f := newTestAlloc(t, 4, 1)
	ca := al.Core(0)
	live, _ := ca.Alloc(500, f)
	dead, _ := ca.Alloc(500, f)
	_ = dead // allocated but (conceptually) superseded: no log pointer
	keepHuge, _ := ca.Alloc(5<<20, f)

	crashed := arena.Crash()
	al2 := New(crashed, 0, 4, 1)
	al2.BeginRecovery()
	al2.RecoverMark(live, 500)
	al2.RecoverMark(keepHuge, 5<<20)
	al2.FinishRecovery()

	// The live block must still be considered allocated: a new alloc
	// must not hand it out again.
	ca2 := al2.Core(0)
	for i := 0; i < 100; i++ {
		off, err := ca2.Alloc(500, f)
		if err != nil {
			t.Fatal(err)
		}
		if off == live {
			t.Fatal("recovery lost a live block: it was re-allocated")
		}
		if off == dead {
			break // dead block correctly recycled
		}
	}
	// Huge span survives; its chunks are not in the free pool.
	// 4 chunks total: 1 cut for 512 B class, 2 huge, 1 free before the
	// new allocations above.
	if got, err := ca2.Alloc(5<<20, f); err == nil {
		start := got &^ (pmem.ChunkSize - 1)
		if start == keepHuge-headerReserve {
			t.Fatal("recovered huge span re-allocated")
		}
	}
}

func TestCrashRecoveryFreesUnreferencedChunks(t *testing.T) {
	al, arena, f := newTestAlloc(t, 4, 1)
	ca := al.Core(0)
	ca.Alloc(500, f) // cut a chunk, but no RecoverMark will reference it
	ca.Alloc(5<<20, f)

	crashed := arena.Crash()
	al2 := New(crashed, 0, 4, 1)
	al2.BeginRecovery()
	al2.FinishRecovery()
	if got := al2.FreeChunks(); got != 4 {
		t.Errorf("FreeChunks = %d after recovery with empty log, want 4", got)
	}
}

func TestCleanShutdownRecovery(t *testing.T) {
	al, arena, f := newTestAlloc(t, 4, 1)
	ca := al.Core(0)
	live, _ := ca.Alloc(500, f)
	al.FlushBitmaps(f)

	re := arena.Crash() // clean shutdown: bitmaps were flushed first
	al2 := New(re, 0, 4, 1)
	al2.RecoverFromCleanShutdown()
	ca2 := al2.Core(0)
	for i := 0; i < 10; i++ {
		off, err := ca2.Alloc(500, f)
		if err != nil {
			t.Fatal(err)
		}
		if off == live {
			t.Fatal("clean-shutdown recovery re-allocated a live block")
		}
	}
}

func TestUsedBlocks(t *testing.T) {
	al, _, f := newTestAlloc(t, 2, 1)
	ca := al.Core(0)
	off, _ := ca.Alloc(300, f)
	ca.Alloc(300, f)
	if got := al.UsedBlocks(off); got != 2 {
		t.Errorf("UsedBlocks = %d, want 2", got)
	}
}

// Property: any interleaving of allocs and frees never hands out
// overlapping live blocks, and alloc sizes are respected.
func TestQuickNoOverlappingLiveBlocks(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := pmem.New(4 * pmem.ChunkSize)
		al := New(a, 0, 4, 1)
		f := a.NewFlusher()
		ca := al.Core(0)
		type blk struct {
			off  int64
			size int
		}
		var live []blk
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				ca.Free(live[j].off, live[j].size, f)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			size := 1 + rng.Intn(8192)
			off, err := ca.Alloc(size, f)
			if err != nil {
				continue
			}
			for _, b := range live {
				if off < b.off+int64(b.size) && b.off < off+int64(size) {
					return false // overlap
				}
			}
			live = append(live, blk{off, size})
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: crash recovery with the full live set re-marked yields an
// allocator that never re-allocates a live block.
func TestQuickRecoveryPreservesLiveSet(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := pmem.New(4 * pmem.ChunkSize)
		al := New(a, 0, 4, 1)
		f := a.NewFlusher()
		ca := al.Core(0)
		type blk struct {
			off  int64
			size int
		}
		var live []blk
		for i := 0; i < 100; i++ {
			size := 1 + rng.Intn(2048)
			off, err := ca.Alloc(size, f)
			if err != nil {
				break
			}
			if rng.Intn(4) == 0 {
				ca.Free(off, size, f)
			} else {
				live = append(live, blk{off, size})
			}
		}
		crashed := a.Crash()
		al2 := New(crashed, 0, 4, 1)
		al2.BeginRecovery()
		for _, b := range live {
			al2.RecoverMark(b.off, b.size)
		}
		al2.FinishRecovery()
		ca2 := al2.Core(0)
		f2 := crashed.NewFlusher()
		for i := 0; i < 200; i++ {
			size := 1 + rng.Intn(2048)
			off, err := ca2.Alloc(size, f2)
			if err != nil {
				break
			}
			for _, b := range live {
				if off < b.off+int64(b.size) && b.off < off+int64(size) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

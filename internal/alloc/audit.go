package alloc

// Introspection for invariant checkers (internal/fault): the lazy-persist
// design's central claim is that the volatile bitmaps rebuilt after a
// crash exactly match the set of records reachable from the replayed
// logs, and these accessors expose the allocator's side of that equation.

// AuditBlocks calls fn for every data block currently marked allocated in
// a class-cut chunk's bitmap, with the block's arena offset and its class
// size. Huge spans and raw chunks are not visited. The allocator lock is
// held across the walk, so the caller must not allocate or free from fn.
func (al *Allocator) AuditBlocks(fn func(off int64, classSize int)) {
	al.mu.Lock()
	defer al.mu.Unlock()
	mem := al.arena.Mem()
	for i := 0; i < al.n; i++ {
		st := &al.chunks[i]
		if st.class < 0 {
			continue
		}
		cs := ClassSize(st.class)
		base := al.chunkOff(i)
		for s := 0; s < st.capacity; s++ {
			if mem[base+64+s/8]&(1<<(s%8)) != 0 {
				fn(int64(base+headerReserve+s*cs), cs)
			}
		}
	}
}

// FreeList returns the arena offsets of the chunks currently in the
// global free pool.
func (al *Allocator) FreeList() []int64 {
	al.mu.Lock()
	defer al.mu.Unlock()
	out := make([]int64, 0, len(al.free))
	for _, i := range al.free {
		out = append(out, int64(al.chunkOff(i)))
	}
	return out
}

// RawChunks returns the arena offsets of chunks handed out whole
// (AllocRawChunk or RecoverMarkRawChunk) — the OpLog's segments.
func (al *Allocator) RawChunks() []int64 {
	al.mu.Lock()
	defer al.mu.Unlock()
	var out []int64
	for i := range al.chunks {
		if al.chunks[i].owner == -2 {
			out = append(out, int64(al.chunkOff(i)))
		}
	}
	return out
}

package alloc

import "flatstore/internal/pmem"

// RecoveryStats counts integrity events observed while rebuilding the
// allocator. Historically a corrupt or torn chunk header was silently
// treated as free space; now every such event is counted so salvage can
// report it instead of swallowing it.
type RecoveryStats struct {
	// CorruptHeaders is the number of chunk headers that were unreadable
	// at BeginRecovery (bad magic payload, impossible class size, huge
	// span running past the arena) and were therefore treated as free.
	CorruptHeaders int
	// DanglingPtrs is the number of RecoverMark calls whose pointer did
	// not resolve to a valid block (out of the managed range, chunk not
	// cut, slot out of range or misaligned).
	DanglingPtrs int
}

// RecoveryStats returns the counters accumulated since BeginRecovery.
func (al *Allocator) RecoveryStats() RecoveryStats {
	al.mu.Lock()
	defer al.mu.Unlock()
	return al.recStats
}

// MarkResult classifies a RecoverMark outcome.
type MarkResult int

const (
	// MarkLive: the block was newly marked allocated.
	MarkLive MarkResult = iota
	// MarkDuplicate: the block was already marked (duplicate log entries
	// for the same pointer are normal — e.g. a survivor chunk plus the
	// original batch).
	MarkDuplicate
	// MarkDangling: the pointer did not resolve to a valid block. The
	// record it claimed to reference cannot be trusted.
	MarkDangling
)

// headerClass resolves a class-size payload read from a persisted chunk
// header to its class index, or -1 when the payload is not a valid class
// size. Unlike classIndex it never panics: the payload comes off media
// and may have rotted into anything, including zero.
func headerClass(cs int) int {
	if cs <= 0 || cs > MaxClass {
		return -1
	}
	class := classIndex(cs)
	if class < 0 || ClassSize(class) != cs {
		return -1
	}
	return class
}

// chunkIndexBounded is the defensive chunkIndex used on pointers
// reconstructed from possibly-corrupt media: it reports ok=false instead
// of indexing out of range.
func (al *Allocator) chunkIndexBounded(off int64) (int, bool) {
	if off < int64(al.base) {
		return 0, false
	}
	i := (int(off) - al.base) / pmem.ChunkSize
	if i >= al.n {
		return 0, false
	}
	return i, true
}

// BeginRecovery prepares the allocator for post-crash reconstruction: it
// reads the persisted chunk headers (class cuts and huge spans survive a
// crash because they are flushed when written), zeroes every bitmap, and
// empties the free pool. The caller then invokes RecoverMark for each
// valid pointer discovered in the OpLog and finally FinishRecovery.
func (al *Allocator) BeginRecovery() {
	al.mu.Lock()
	defer al.mu.Unlock()
	al.free = al.free[:0]
	al.recStats = RecoveryStats{}
	mem := al.arena.Mem()
	for i := 0; i < al.n; i++ {
		off := al.chunkOff(i)
		magic := al.arena.ReadUint64(off)
		switch magic & magicMask {
		case magicClass & magicMask:
			cs := int(magic &^ magicMask)
			class := headerClass(cs)
			if class < 0 {
				// Corrupt or torn header: treated as free, but COUNTED —
				// every pointer into this chunk will surface as dangling
				// and its key will be quarantined, so reuse is safe.
				al.recStats.CorruptHeaders++
				al.chunks[i] = chunkState{class: -1, owner: -1}
				continue
			}
			capacity := (pmem.ChunkSize - headerReserve) / cs
			al.chunks[i] = chunkState{class: class, owner: -1, capacity: capacity}
			bm := (capacity + 7) / 8
			for j := off + 64; j < off+64+bm; j++ {
				mem[j] = 0
			}
		case magicHuge & magicMask:
			// A huge span: remember its extent and skip the member
			// chunks, whose leading bytes are payload, not headers.
			n := int(magic &^ magicMask)
			if n <= 0 || i+n > al.n {
				al.recStats.CorruptHeaders++
				al.chunks[i] = chunkState{class: -1, owner: -1}
				continue
			}
			al.chunks[i] = chunkState{class: -1, owner: -1, hugeLen: n}
			for j := i + 1; j < i+n; j++ {
				al.chunks[j] = chunkState{class: -1, owner: -1}
			}
			i += n - 1
		default:
			al.chunks[i] = chunkState{class: -1, owner: -1}
		}
	}
}

// BlockAllocated reports whether the DRAM state records a live block of
// the given size at off: the chunk is cut to the matching class and the
// slot's bitmap bit is set, or the offset is a recorded in-use huge span.
// Callers use it to validate pointers taken from persisted descriptors
// before freeing them — after media rot, a descriptor can outlive the
// accounting that backs it, and freeing through a rotted header would
// corrupt (or panic on) another chunk's bookkeeping.
func (al *Allocator) BlockAllocated(off int64, size int) bool {
	if size <= 0 {
		return false
	}
	class := classIndex(size)
	al.mu.Lock()
	defer al.mu.Unlock()
	if class < 0 {
		i, ok := al.chunkIndexBounded(off - headerReserve)
		if !ok || int(off-headerReserve) != al.chunkOff(i) {
			return false
		}
		return al.chunks[i].hugeLen > 0
	}
	ci, ok := al.chunkIndexBounded(off)
	if !ok {
		return false
	}
	st := al.chunks[ci]
	if st.class != class {
		return false
	}
	cs := ClassSize(class)
	base := al.chunkOff(ci)
	rel := int(off) - base - headerReserve
	if rel < 0 || rel%cs != 0 || rel/cs >= st.capacity {
		return false
	}
	slot := rel / cs
	return al.arena.Mem()[base+64+slot/8]&(1<<(slot%8)) != 0
}

// RecoverMark re-marks the block at off (allocated with the given size) as
// live. It derives the chunk and slot exactly as described in §3.2: the
// chunk base is off &^ (ChunkSize-1) and the slot follows from the
// persisted class size. The pointer comes from a replayed log entry and
// may reference media that has since rotted: every failure to resolve it
// is reported as MarkDangling (and counted) instead of being marked —
// the caller decides whether to quarantine the key.
func (al *Allocator) RecoverMark(off int64, size int) MarkResult {
	if size <= 0 {
		return al.dangling() // length decoded from rotted media
	}
	if classIndex(size) < 0 {
		return al.recoverMarkHuge(off)
	}
	ci, ok := al.chunkIndexBounded(off)
	if !ok {
		return al.dangling()
	}
	st := &al.chunks[ci]
	if st.class < 0 {
		// The pointer references a chunk whose header says it is not
		// cut — a stale log entry, or a chunk whose header rotted.
		return al.dangling()
	}
	cs := ClassSize(st.class)
	base := al.chunkOff(ci)
	rel := int(off) - base - headerReserve
	slot := rel / cs
	if rel < 0 || rel%cs != 0 || slot >= st.capacity {
		return al.dangling()
	}
	mem := al.arena.Mem()
	byteIdx := base + 64 + slot/8
	mask := byte(1 << (slot % 8))
	if mem[byteIdx]&mask != 0 {
		return MarkDuplicate // duplicate log entries are fine
	}
	mem[byteIdx] |= mask
	st.used++
	al.classUsed[st.class].Add(1)
	return MarkLive
}

func (al *Allocator) dangling() MarkResult {
	al.mu.Lock()
	al.recStats.DanglingPtrs++
	al.mu.Unlock()
	return MarkDangling
}

// RecoverMarkRawChunk re-marks a whole chunk as in use by a raw-chunk
// owner (the OpLog's segments). Call between BeginRecovery and
// FinishRecovery, or before RecoverFromCleanShutdown. Reports false when
// off is outside the managed range (a corrupt chain pointer).
func (al *Allocator) RecoverMarkRawChunk(off int64) bool {
	al.mu.Lock()
	defer al.mu.Unlock()
	i, ok := al.chunkIndexBounded(off)
	if !ok {
		return false
	}
	al.chunks[i] = chunkState{class: -1, owner: -2, used: 1}
	return true
}

// RecoverUnmarkRawChunk reverses RecoverMarkRawChunk for a chunk that
// salvage decided to drop (a log chunk past a truncation point). The
// chunk is NOT pushed to the free pool here — FinishRecovery pools every
// unowned, unused chunk, and pushing it twice would hand the same chunk
// to two owners.
func (al *Allocator) RecoverUnmarkRawChunk(off int64) {
	al.mu.Lock()
	defer al.mu.Unlock()
	if i, ok := al.chunkIndexBounded(off); ok {
		al.chunks[i] = chunkState{class: -1, owner: -1}
	}
}

func (al *Allocator) recoverMarkHuge(off int64) MarkResult {
	start, ok := al.chunkIndexBounded(off - headerReserve)
	if !ok || int(off-headerReserve) != al.chunkOff(start) {
		// Huge payloads start exactly headerReserve into their first
		// chunk; anything else is a rotted pointer.
		return al.dangling()
	}
	st := &al.chunks[start]
	if st.hugeLen <= 0 {
		return al.dangling() // not a huge span recorded by BeginRecovery
	}
	if st.used != 0 {
		return MarkDuplicate
	}
	for j := start; j < start+st.hugeLen; j++ {
		al.chunks[j].used = 1
	}
	return MarkLive
}

// FinishRecovery rebuilds the free pool and redistributes partially-filled
// chunks to cores. Chunks that were cut but hold no live blocks are
// released (their persisted class is cleared).
func (al *Allocator) FinishRecovery() {
	al.mu.Lock()
	defer al.mu.Unlock()
	f := al.arena.NewFlusher()
	defer f.FlushEvents()
	next := 0 // round-robin core assignment for partial chunks
	for i := 0; i < al.n; i++ {
		st := &al.chunks[i]
		switch {
		case st.hugeLen > 0 && st.used == 0:
			// Dead huge span: release every member chunk.
			f.PersistUint64(al.chunkOff(i), magicFree)
			n := st.hugeLen
			for j := i; j < i+n; j++ {
				al.chunks[j] = chunkState{class: -1, owner: -1}
				al.free = append(al.free, j)
			}
			i += n - 1
		case st.hugeLen > 0:
			// Live huge span: keep, assign an owner, skip members.
			core := next % len(al.cores)
			next++
			for j := i; j < i+st.hugeLen; j++ {
				al.chunks[j].owner = core
			}
			i += st.hugeLen - 1
		case st.class >= 0 && st.used == 0:
			f.PersistUint64(al.chunkOff(i), magicFree)
			*st = chunkState{class: -1, owner: -1}
			al.free = append(al.free, i)
		case st.class >= 0:
			core := next % len(al.cores)
			next++
			st.owner = core
			ca := al.cores[core]
			if ca.partial[st.class] < 0 && st.used < st.capacity {
				ca.partial[st.class] = i
			}
		case st.owner == -1 && st.used == 0:
			al.free = append(al.free, i)
		}
	}
}

// FlushBitmaps persists every in-use chunk's header and bitmap — the
// normal-shutdown path (§3.5), after which recovery can load bitmaps
// directly instead of replaying the log.
func (al *Allocator) FlushBitmaps(f *pmem.Flusher) {
	al.mu.Lock()
	defer al.mu.Unlock()
	for i, st := range al.chunks {
		if st.class < 0 {
			continue
		}
		cs := ClassSize(st.class)
		blocks := (pmem.ChunkSize - headerReserve) / cs
		f.Flush(al.chunkOff(i), 64+(blocks+7)/8)
	}
	f.Fence()
}

// RecoverFromCleanShutdown rebuilds DRAM state by trusting the persisted
// bitmaps (valid only after FlushBitmaps + a clean shutdown flag).
func (al *Allocator) RecoverFromCleanShutdown() {
	al.mu.Lock()
	defer al.mu.Unlock()
	f := al.arena.NewFlusher()
	defer f.FlushEvents()
	al.free = al.free[:0]
	mem := al.arena.Mem()
	next := 0
	for i := 0; i < al.n; i++ {
		if al.chunks[i].owner == -2 {
			continue // raw log chunk re-marked by RecoverMarkRawChunk
		}
		off := al.chunkOff(i)
		magic := al.arena.ReadUint64(off)
		switch magic & magicMask {
		case magicClass & magicMask:
			cs := int(magic &^ magicMask)
			class := headerClass(cs)
			if class < 0 {
				al.chunks[i] = chunkState{class: -1, owner: -1}
				al.free = append(al.free, i)
				continue
			}
			capacity := (pmem.ChunkSize - headerReserve) / cs
			used := 0
			for s := 0; s < capacity; s++ {
				if mem[off+64+s/8]&(1<<(s%8)) != 0 {
					used++
				}
			}
			if used == 0 {
				f.PersistUint64(off, magicFree)
				al.chunks[i] = chunkState{class: -1, owner: -1}
				al.free = append(al.free, i)
				continue
			}
			core := next % len(al.cores)
			next++
			al.chunks[i] = chunkState{class: class, owner: core, used: used, capacity: capacity}
			al.classUsed[class].Add(int64(used))
			if used < capacity && al.cores[core].partial[class] < 0 {
				al.cores[core].partial[class] = i
			}
		case magicHuge & magicMask:
			n := int(magic &^ magicMask)
			if n <= 0 || i+n > al.n {
				al.chunks[i] = chunkState{class: -1, owner: -1}
				al.free = append(al.free, i)
				continue
			}
			core := next % len(al.cores)
			next++
			al.chunks[i] = chunkState{class: -1, owner: core, used: 1, hugeLen: n}
			for j := i + 1; j < i+n; j++ {
				al.chunks[j] = chunkState{class: -1, owner: core, used: 1}
			}
			i += n - 1
		default:
			al.chunks[i] = chunkState{class: -1, owner: -1}
			al.free = append(al.free, i)
		}
	}
}

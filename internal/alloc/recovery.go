package alloc

import "flatstore/internal/pmem"

// BeginRecovery prepares the allocator for post-crash reconstruction: it
// reads the persisted chunk headers (class cuts and huge spans survive a
// crash because they are flushed when written), zeroes every bitmap, and
// empties the free pool. The caller then invokes RecoverMark for each
// valid pointer discovered in the OpLog and finally FinishRecovery.
func (al *Allocator) BeginRecovery() {
	al.mu.Lock()
	defer al.mu.Unlock()
	al.free = al.free[:0]
	mem := al.arena.Mem()
	for i := 0; i < al.n; i++ {
		off := al.chunkOff(i)
		magic := al.arena.ReadUint64(off)
		switch magic & magicMask {
		case magicClass & magicMask:
			cs := int(magic &^ magicMask)
			class := classIndex(cs)
			if class < 0 || ClassSize(class) != cs {
				// Corrupt or torn header; treat as free.
				al.chunks[i] = chunkState{class: -1, owner: -1}
				continue
			}
			capacity := (pmem.ChunkSize - headerReserve) / cs
			al.chunks[i] = chunkState{class: class, owner: -1, capacity: capacity}
			bm := (capacity + 7) / 8
			for j := off + 64; j < off+64+bm; j++ {
				mem[j] = 0
			}
		case magicHuge & magicMask:
			// A huge span: remember its extent and skip the member
			// chunks, whose leading bytes are payload, not headers.
			n := int(magic &^ magicMask)
			if n <= 0 || i+n > al.n {
				al.chunks[i] = chunkState{class: -1, owner: -1}
				continue
			}
			al.chunks[i] = chunkState{class: -1, owner: -1, hugeLen: n}
			for j := i + 1; j < i+n; j++ {
				al.chunks[j] = chunkState{class: -1, owner: -1}
			}
			i += n - 1
		default:
			al.chunks[i] = chunkState{class: -1, owner: -1}
		}
	}
}

// RecoverMark re-marks the block at off (allocated with the given size) as
// live. It derives the chunk and slot exactly as described in §3.2: the
// chunk base is off &^ (ChunkSize-1) and the slot follows from the
// persisted class size.
func (al *Allocator) RecoverMark(off int64, size int) {
	if classIndex(size) < 0 {
		al.recoverMarkHuge(off)
		return
	}
	ci := al.chunkIndex(off)
	st := &al.chunks[ci]
	if st.class < 0 {
		// The pointer references a chunk whose header says it is not
		// cut — possible only for stale log entries; ignore.
		return
	}
	cs := ClassSize(st.class)
	base := al.chunkOff(ci)
	slot := (int(off) - base - headerReserve) / cs
	if slot < 0 || slot >= st.capacity {
		return
	}
	mem := al.arena.Mem()
	byteIdx := base + 64 + slot/8
	mask := byte(1 << (slot % 8))
	if mem[byteIdx]&mask != 0 {
		return // already marked (duplicate log entries are fine)
	}
	mem[byteIdx] |= mask
	st.used++
}

// RecoverMarkRawChunk re-marks a whole chunk as in use by a raw-chunk
// owner (the OpLog's segments). Call between BeginRecovery and
// FinishRecovery, or before RecoverFromCleanShutdown.
func (al *Allocator) RecoverMarkRawChunk(off int64) {
	al.mu.Lock()
	defer al.mu.Unlock()
	i := al.chunkIndex(off)
	al.chunks[i] = chunkState{class: -1, owner: -2, used: 1}
}

func (al *Allocator) recoverMarkHuge(off int64) {
	start := al.chunkIndex(off - headerReserve)
	st := &al.chunks[start]
	if st.hugeLen <= 0 {
		return // not a huge span recorded by BeginRecovery
	}
	for j := start; j < start+st.hugeLen; j++ {
		al.chunks[j].used = 1
	}
}

// FinishRecovery rebuilds the free pool and redistributes partially-filled
// chunks to cores. Chunks that were cut but hold no live blocks are
// released (their persisted class is cleared).
func (al *Allocator) FinishRecovery() {
	al.mu.Lock()
	defer al.mu.Unlock()
	f := al.arena.NewFlusher()
	defer f.FlushEvents()
	next := 0 // round-robin core assignment for partial chunks
	for i := 0; i < al.n; i++ {
		st := &al.chunks[i]
		switch {
		case st.hugeLen > 0 && st.used == 0:
			// Dead huge span: release every member chunk.
			f.PersistUint64(al.chunkOff(i), magicFree)
			n := st.hugeLen
			for j := i; j < i+n; j++ {
				al.chunks[j] = chunkState{class: -1, owner: -1}
				al.free = append(al.free, j)
			}
			i += n - 1
		case st.hugeLen > 0:
			// Live huge span: keep, assign an owner, skip members.
			core := next % len(al.cores)
			next++
			for j := i; j < i+st.hugeLen; j++ {
				al.chunks[j].owner = core
			}
			i += st.hugeLen - 1
		case st.class >= 0 && st.used == 0:
			f.PersistUint64(al.chunkOff(i), magicFree)
			*st = chunkState{class: -1, owner: -1}
			al.free = append(al.free, i)
		case st.class >= 0:
			core := next % len(al.cores)
			next++
			st.owner = core
			ca := al.cores[core]
			if ca.partial[st.class] < 0 && st.used < st.capacity {
				ca.partial[st.class] = i
			}
		case st.owner == -1 && st.used == 0:
			al.free = append(al.free, i)
		}
	}
}

// FlushBitmaps persists every in-use chunk's header and bitmap — the
// normal-shutdown path (§3.5), after which recovery can load bitmaps
// directly instead of replaying the log.
func (al *Allocator) FlushBitmaps(f *pmem.Flusher) {
	al.mu.Lock()
	defer al.mu.Unlock()
	for i, st := range al.chunks {
		if st.class < 0 {
			continue
		}
		cs := ClassSize(st.class)
		blocks := (pmem.ChunkSize - headerReserve) / cs
		f.Flush(al.chunkOff(i), 64+(blocks+7)/8)
	}
	f.Fence()
}

// RecoverFromCleanShutdown rebuilds DRAM state by trusting the persisted
// bitmaps (valid only after FlushBitmaps + a clean shutdown flag).
func (al *Allocator) RecoverFromCleanShutdown() {
	al.mu.Lock()
	defer al.mu.Unlock()
	f := al.arena.NewFlusher()
	defer f.FlushEvents()
	al.free = al.free[:0]
	mem := al.arena.Mem()
	next := 0
	for i := 0; i < al.n; i++ {
		if al.chunks[i].owner == -2 {
			continue // raw log chunk re-marked by RecoverMarkRawChunk
		}
		off := al.chunkOff(i)
		magic := al.arena.ReadUint64(off)
		switch magic & magicMask {
		case magicClass & magicMask:
			cs := int(magic &^ magicMask)
			class := classIndex(cs)
			if class < 0 || ClassSize(class) != cs {
				al.chunks[i] = chunkState{class: -1, owner: -1}
				al.free = append(al.free, i)
				continue
			}
			capacity := (pmem.ChunkSize - headerReserve) / cs
			used := 0
			for s := 0; s < capacity; s++ {
				if mem[off+64+s/8]&(1<<(s%8)) != 0 {
					used++
				}
			}
			if used == 0 {
				f.PersistUint64(off, magicFree)
				al.chunks[i] = chunkState{class: -1, owner: -1}
				al.free = append(al.free, i)
				continue
			}
			core := next % len(al.cores)
			next++
			al.chunks[i] = chunkState{class: class, owner: core, used: used, capacity: capacity}
			if used < capacity && al.cores[core].partial[class] < 0 {
				al.cores[core].partial[class] = i
			}
		case magicHuge & magicMask:
			n := int(magic &^ magicMask)
			if n <= 0 || i+n > al.n {
				al.chunks[i] = chunkState{class: -1, owner: -1}
				al.free = append(al.free, i)
				continue
			}
			core := next % len(al.cores)
			next++
			al.chunks[i] = chunkState{class: -1, owner: core, used: 1, hugeLen: n}
			for j := i + 1; j < i+n; j++ {
				al.chunks[j] = chunkState{class: -1, owner: core, used: 1}
			}
			i += n - 1
		default:
			al.chunks[i] = chunkState{class: -1, owner: -1}
			al.free = append(al.free, i)
		}
	}
}

package alloc

import (
	"testing"

	"flatstore/internal/pmem"
)

// TestRecoveryCountsCorruptHeaders is the regression test for the silent
// corrupt-header swallow: BeginRecovery used to treat a chunk whose header
// failed validation as plain free space with no trace. It must now count
// the event so salvage can report it, and every pointer into the chunk
// must come back MarkDangling instead of being marked.
func TestRecoveryCountsCorruptHeaders(t *testing.T) {
	al, a, f := newTestAlloc(t, 4, 1)
	ca := al.Core(0)
	off, err := ca.Alloc(300, f)
	if err != nil {
		t.Fatal(err)
	}

	// Rot the class payload of the chunk's header: the magic prefix still
	// matches, but the class size is no longer a valid power of two.
	chunk := off &^ (pmem.ChunkSize - 1)
	a.Corrupt(int(chunk), 8, func(b []byte) { b[0] ^= 0x07 })

	al.BeginRecovery()
	if rs := al.RecoveryStats(); rs.CorruptHeaders != 1 {
		t.Fatalf("CorruptHeaders = %d, want 1", rs.CorruptHeaders)
	}
	if got := al.RecoverMark(off, 300); got != MarkDangling {
		t.Fatalf("RecoverMark into corrupt chunk = %v, want MarkDangling", got)
	}
	if rs := al.RecoveryStats(); rs.DanglingPtrs != 1 {
		t.Fatalf("DanglingPtrs = %d, want 1", rs.DanglingPtrs)
	}
	al.FinishRecovery()

	// A class payload rotted to exactly zero used to panic classIndex
	// before the validity check could reject it.
	al3, a3, f3 := newTestAlloc(t, 4, 1)
	off3, err := al3.Core(0).Alloc(300, f3)
	if err != nil {
		t.Fatal(err)
	}
	chunk3 := off3 &^ (pmem.ChunkSize - 1)
	a3.Corrupt(int(chunk3), 8, func(b []byte) { b[0], b[1] = 0, 0 }) // class size 512 -> 0
	al3.BeginRecovery()
	if rs := al3.RecoveryStats(); rs.CorruptHeaders != 1 {
		t.Fatalf("zero-class CorruptHeaders = %d, want 1", rs.CorruptHeaders)
	}
	if got := al3.RecoverMark(off3, 300); got != MarkDangling {
		t.Fatalf("RecoverMark into zero-class chunk = %v, want MarkDangling", got)
	}
	if got := al3.RecoverMark(off3, 0); got != MarkDangling {
		t.Fatalf("RecoverMark with rotted zero length = %v, want MarkDangling", got)
	}
	al3.FinishRecovery()

	// A huge-span header whose chunk count runs past the arena is the
	// other corrupt-header shape.
	al2, a2, f2 := newTestAlloc(t, 6, 1)
	hoff, err := al2.Core(0).Alloc(2*pmem.ChunkSize, f2)
	if err != nil {
		t.Fatal(err)
	}
	hchunk := (hoff - headerReserve) &^ (pmem.ChunkSize - 1)
	a2.Corrupt(int(hchunk), 8, func(b []byte) { b[0] = 0xFF }) // chunk count 255 ≫ arena
	al2.BeginRecovery()
	if rs := al2.RecoveryStats(); rs.CorruptHeaders != 1 {
		t.Fatalf("huge CorruptHeaders = %d, want 1", rs.CorruptHeaders)
	}
	if got := al2.RecoverMark(hoff, 2*pmem.ChunkSize); got != MarkDangling {
		t.Fatalf("RecoverMark into corrupt huge span = %v, want MarkDangling", got)
	}
	al2.FinishRecovery()
}

// TestBlockAllocated covers the descriptor-validation helper both ways.
func TestBlockAllocated(t *testing.T) {
	al, _, f := newTestAlloc(t, 4, 1)
	ca := al.Core(0)
	off, err := ca.Alloc(300, f)
	if err != nil {
		t.Fatal(err)
	}
	if !al.BlockAllocated(off, 300) {
		t.Fatal("live block reported not allocated")
	}
	if al.BlockAllocated(off, 5000) {
		t.Fatal("size/class mismatch not rejected")
	}
	if al.BlockAllocated(off+1, 300) {
		t.Fatal("misaligned pointer not rejected")
	}
	if al.BlockAllocated(int64(4*pmem.ChunkSize)+512, 300) {
		t.Fatal("out-of-range pointer not rejected")
	}
	ca.Free(off, 300, f)
	if al.BlockAllocated(off, 300) {
		t.Fatal("freed block reported allocated")
	}

	hoff, err := ca.Alloc(2*pmem.ChunkSize, f)
	if err != nil {
		t.Fatal(err)
	}
	if !al.BlockAllocated(hoff, 2*pmem.ChunkSize) {
		t.Fatal("huge span reported not allocated")
	}
	if al.BlockAllocated(hoff+pmem.ChunkSize, 2*pmem.ChunkSize) {
		t.Fatal("mid-span pointer not rejected")
	}
	ca.Free(hoff, 2*pmem.ChunkSize, f)
	if al.BlockAllocated(hoff, 2*pmem.ChunkSize) {
		t.Fatal("freed huge span reported allocated")
	}
}

// Package alloc implements FlatStore's lazy-persist NVM allocator (§3.2).
//
// The arena is cut into 4 MB chunks. Each in-use chunk is cut into data
// blocks of a single size class; the class is recorded persistently in the
// chunk header when the chunk is cut, but the per-chunk allocation bitmap
// is updated WITHOUT flushing. This removes one flush from every Put: the
// OpLog already records the address of every allocated record, so after a
// crash the bitmaps are reconstructed deterministically by scanning the
// log and calling RecoverMark for every live pointer — the chunk base is
// addr &^ (ChunkSize-1) and the slot is derived from the persisted class.
//
// Chunks are partitioned to server cores (a Hoard-like design): each core
// allocates from privately owned chunks without locking; only grabbing a
// fresh chunk from the global pool takes a mutex. Allocations larger than
// the maximum class take one or more contiguous whole chunks.
package alloc

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"flatstore/internal/pmem"
)

const (
	// headerReserve is the space reserved at the start of every chunk
	// for the persistent header and bitmap. 64 B of header plus a
	// ≤2046 B bitmap (minimum class 256 B) fit comfortably.
	headerReserve = 4096

	// MinClass is the smallest data-block class. The engine stores
	// records ≤256 B inline in the OpLog, so the allocator never sees
	// smaller requests (the paper dismisses the low 8 bits of Ptr for
	// the same reason).
	MinClass = 256
	// MaxClass is the largest within-chunk class; larger allocations
	// take whole chunks.
	MaxClass = 1 << 20

	// Chunk header magic values (persisted).
	magicFree  = 0
	magicClass = 0xF1A7_0000_0000_0000 // low 32 bits hold the class size
	magicHuge  = 0x46A7_0000_0000_0000 // low 32 bits hold the chunk count
	magicMask  = 0xFFFF_0000_0000_0000
)

// ErrOutOfMemory is returned when no chunk can satisfy an allocation.
var ErrOutOfMemory = errors.New("alloc: out of NVM space")

// NumClasses is the number of within-chunk size classes
// (256 B, 512 B, … 1 MB).
const NumClasses = 13

// classIndex returns the class index for a payload size, or -1 if the
// request needs whole chunks.
func classIndex(size int) int {
	if size <= 0 {
		panic(fmt.Sprintf("alloc: non-positive size %d", size))
	}
	if size > MaxClass {
		return -1
	}
	c := MinClass
	for i := 0; i < NumClasses; i++ {
		if size <= c {
			return i
		}
		c <<= 1
	}
	return -1
}

// ClassSize returns the block size of class index i.
func ClassSize(i int) int { return MinClass << i }

// chunkState is the DRAM bookkeeping for one chunk.
type chunkState struct {
	class    int // class index, -1 when free or huge
	owner    int // core that cut the chunk, -1 when unowned
	used     int // allocated blocks
	capacity int // total blocks
	nextHint int // slot search hint
	hugeLen  int // >0: first chunk of a huge allocation spanning hugeLen chunks
}

// Allocator manages a contiguous range of chunks in an arena.
type Allocator struct {
	arena *pmem.Arena
	base  int // first managed byte (chunk-aligned)
	n     int // managed chunks

	mu       sync.Mutex
	free     []int // free chunk indices (LIFO)
	chunks   []chunkState
	recStats RecoveryStats // integrity events since BeginRecovery

	// classUsed mirrors the per-chunk used counts aggregated by class.
	// chunkState.used is owner-core-private (mutated without al.mu), so a
	// live occupancy snapshot cannot read it; these atomics are the
	// race-clean aggregate, maintained at every alloc/free/recover-mark.
	classUsed [NumClasses]atomic.Int64

	cores []*CoreAlloc
}

// New creates an allocator over chunks [firstChunk, firstChunk+nchunks) of
// the arena, with one private allocation context per core.
func New(arena *pmem.Arena, firstChunk, nchunks, ncores int) *Allocator {
	if ncores <= 0 {
		panic("alloc: need at least one core")
	}
	if (firstChunk+nchunks)*pmem.ChunkSize > arena.Size() {
		panic("alloc: chunk range exceeds arena")
	}
	al := &Allocator{
		arena:  arena,
		base:   firstChunk * pmem.ChunkSize,
		n:      nchunks,
		chunks: make([]chunkState, nchunks),
	}
	for i := range al.chunks {
		al.chunks[i] = chunkState{class: -1, owner: -1}
		al.free = append(al.free, nchunks-1-i) // pop from the front of the range first
	}
	for c := 0; c < ncores; c++ {
		ca := &CoreAlloc{al: al, core: c}
		for i := range ca.partial {
			ca.partial[i] = -1
		}
		al.cores = append(al.cores, ca)
	}
	return al
}

// Core returns core c's private allocation context.
func (al *Allocator) Core(c int) *CoreAlloc { return al.cores[c] }

// FreeChunks returns the number of chunks in the global free pool.
func (al *Allocator) FreeChunks() int {
	al.mu.Lock()
	defer al.mu.Unlock()
	return len(al.free)
}

// chunkOff returns the byte offset of chunk i in the arena.
func (al *Allocator) chunkOff(i int) int { return al.base + i*pmem.ChunkSize }

// chunkIndex returns the chunk index containing arena offset off.
func (al *Allocator) chunkIndex(off int64) int {
	return (int(off) - al.base) / pmem.ChunkSize
}

// popFree removes a free chunk from the pool.
func (al *Allocator) popFree() (int, bool) {
	al.mu.Lock()
	defer al.mu.Unlock()
	if len(al.free) == 0 {
		return 0, false
	}
	i := al.free[len(al.free)-1]
	al.free = al.free[:len(al.free)-1]
	return i, true
}

// ClassOccupancy is one size class's live footprint.
type ClassOccupancy struct {
	Chunks     int // chunks cut to this class
	UsedBlocks int // allocated blocks across them
	CapBlocks  int // total block slots across them
}

// Occupancy is a moment-in-time view of how the managed chunks are used.
type Occupancy struct {
	Classes [NumClasses]ClassOccupancy
	Raw     int // raw whole chunks (log segments)
	Huge    int // chunks consumed by huge (multi-chunk) allocations
	Free    int // chunks in the free pool
}

// Occupancy snapshots the allocator's chunk usage under its lock (reader
// path only; the per-op allocation fast path never takes al.mu).
func (al *Allocator) Occupancy() Occupancy {
	var o Occupancy
	al.mu.Lock()
	defer al.mu.Unlock()
	o.Free = len(al.free)
	for i := range al.chunks {
		c := &al.chunks[i]
		switch {
		case c.class >= 0:
			cl := &o.Classes[c.class]
			cl.Chunks++
			cl.CapBlocks += c.capacity
		case c.owner == -2:
			o.Raw++
		case c.hugeLen > 0:
			o.Huge += c.hugeLen
		}
	}
	for i := range o.Classes {
		o.Classes[i].UsedBlocks = int(al.classUsed[i].Load())
	}
	return o
}

// popFreeRun removes a run of n contiguous free chunks from the pool.
func (al *Allocator) popFreeRun(n int) (int, bool) {
	al.mu.Lock()
	defer al.mu.Unlock()
	inPool := make(map[int]bool, len(al.free))
	for _, i := range al.free {
		inPool[i] = true
	}
	for start := 0; start+n <= al.n; start++ {
		ok := true
		for j := start; j < start+n; j++ {
			if !inPool[j] {
				ok = false
				break
			}
		}
		if ok {
			kept := al.free[:0]
			for _, i := range al.free {
				if i < start || i >= start+n {
					kept = append(kept, i)
				}
			}
			al.free = kept
			return start, true
		}
	}
	return 0, false
}

func (al *Allocator) pushFree(i int) {
	al.mu.Lock()
	al.free = append(al.free, i)
	al.mu.Unlock()
}

// AllocRawChunk hands out one whole free chunk (used by the OpLog for log
// segments). The chunk header is NOT touched: the caller owns all 4 MB.
func (al *Allocator) AllocRawChunk() (off int64, err error) {
	i, ok := al.popFree()
	if !ok {
		return 0, ErrOutOfMemory
	}
	al.mu.Lock()
	al.chunks[i] = chunkState{class: -1, owner: -2} // -2 marks raw
	al.mu.Unlock()
	return int64(al.chunkOff(i)), nil
}

// FreeRawChunk returns a raw chunk to the pool, clearing its first word.
// Raw chunks are log segments whose header magic would otherwise persist
// after the free: a later salvage recovery scanning for orphaned log
// chunks must not mistake a freed (possibly reused and stale) segment for
// one holding acknowledged data.
func (al *Allocator) FreeRawChunk(off int64, f *pmem.Flusher) {
	i := al.chunkIndex(off)
	f.PersistUint64(int(off), magicFree)
	al.mu.Lock()
	al.chunks[i] = chunkState{class: -1, owner: -1}
	al.mu.Unlock()
	al.pushFree(i)
}

// CoreAlloc is one core's private allocation context. It is not safe for
// concurrent use (each server core owns exactly one).
type CoreAlloc struct {
	al      *Allocator
	core    int
	partial [NumClasses]int // current chunk per class, -1 if none
}

// cut takes a free chunk, assigns it the class, and persists the header.
func (c *CoreAlloc) cut(class int, f *pmem.Flusher) (int, error) {
	i, ok := c.al.popFree()
	if !ok {
		return 0, ErrOutOfMemory
	}
	cs := ClassSize(class)
	off := c.al.chunkOff(i)
	// Persist the cutting size at the head of the chunk (§3.2): this is
	// the only flushed allocator metadata on the allocation path.
	f.PersistUint64(off, magicClass|uint64(cs))
	// The bitmap starts zeroed in a fresh arena; after runtime reuse it
	// may hold stale bits in the cache view, so clear it (no flush —
	// recovery rebuilds it anyway).
	bm := c.bitmapBytes(cs)
	mem := c.al.arena.Mem()
	for j := off + 64; j < off+64+bm; j++ {
		mem[j] = 0
	}
	c.al.mu.Lock()
	c.al.chunks[i] = chunkState{
		class:    class,
		owner:    c.core,
		capacity: (pmem.ChunkSize - headerReserve) / cs,
	}
	c.al.mu.Unlock()
	return i, nil
}

func (c *CoreAlloc) bitmapBytes(classSize int) int {
	blocks := (pmem.ChunkSize - headerReserve) / classSize
	return (blocks + 7) / 8
}

// Alloc returns the arena offset of a block that can hold size bytes.
// Small requests are rounded up to a class; requests beyond MaxClass take
// whole chunks. The returned offset is always ≥256-byte aligned, so it can
// be packed into a 40-bit OpLog pointer. f persists the chunk header when
// a fresh chunk is cut; the bitmap update itself is NOT persisted (that is
// the point of the lazy-persist design).
func (c *CoreAlloc) Alloc(size int, f *pmem.Flusher) (int64, error) {
	class := classIndex(size)
	if class < 0 {
		return c.allocHuge(size, f)
	}
	ci := c.partial[class]
	if ci < 0 {
		n, err := c.cut(class, f)
		if err != nil {
			return 0, err
		}
		c.partial[class] = n
		ci = n
	}
	off, ok := c.allocInChunk(ci)
	if !ok {
		// Chunk full: retire it and cut a new one.
		n, err := c.cut(class, f)
		if err != nil {
			return 0, err
		}
		c.partial[class] = n
		off, ok = c.allocInChunk(n)
		if !ok {
			panic("alloc: fresh chunk has no free block")
		}
	}
	c.al.classUsed[class].Add(1)
	return off, nil
}

// allocInChunk finds a clear bitmap bit in chunk ci, sets it, and returns
// the block's arena offset.
func (c *CoreAlloc) allocInChunk(ci int) (int64, bool) {
	st := &c.al.chunks[ci]
	if st.used == st.capacity {
		return 0, false
	}
	cs := ClassSize(st.class)
	base := c.al.chunkOff(ci)
	mem := c.al.arena.Mem()
	bm := mem[base+64 : base+64+c.bitmapBytes(cs)]
	nwords := (st.capacity + 7) / 8
	for w := 0; w < nwords; w++ {
		idx := (st.nextHint + w) % nwords
		b := bm[idx]
		if b == 0xff {
			continue
		}
		bit := bits.TrailingZeros8(^b)
		slot := idx*8 + bit
		if slot >= st.capacity {
			continue
		}
		bm[idx] = b | 1<<bit // no flush: lazy persist
		st.used++
		st.nextHint = idx
		return int64(base + headerReserve + slot*cs), true
	}
	return 0, false
}

// allocHuge allocates ⌈size/ChunkSize⌉ contiguous chunks.
func (c *CoreAlloc) allocHuge(size int, f *pmem.Flusher) (int64, error) {
	n := (size + headerReserve + pmem.ChunkSize - 1) / pmem.ChunkSize
	start, ok := c.al.popFreeRun(n)
	if !ok {
		return 0, ErrOutOfMemory
	}
	off := c.al.chunkOff(start)
	f.PersistUint64(off, magicHuge|uint64(n))
	c.al.mu.Lock()
	for j := start; j < start+n; j++ {
		c.al.chunks[j] = chunkState{class: -1, owner: c.core}
	}
	c.al.chunks[start].hugeLen = n
	c.al.mu.Unlock()
	return int64(off + headerReserve), nil
}

// Free releases a previously allocated block. It must be called with the
// same size the block was allocated with. The bitmap update is volatile,
// like the allocation itself. Empty chunks are returned to the global
// pool; retiring a chunk persists the cleared header magic via f so a
// later clean-shutdown recovery cannot resurrect it.
func (c *CoreAlloc) Free(off int64, size int, f *pmem.Flusher) {
	class := classIndex(size)
	if class < 0 {
		c.freeHuge(off, f)
		return
	}
	ci := c.al.chunkIndex(off)
	st := &c.al.chunks[ci]
	cs := ClassSize(st.class)
	base := c.al.chunkOff(ci)
	slot := (int(off) - base - headerReserve) / cs
	if slot < 0 || slot >= st.capacity {
		panic(fmt.Sprintf("alloc: Free(%d) outside chunk %d data area", off, ci))
	}
	mem := c.al.arena.Mem()
	byteIdx := base + 64 + slot/8
	mask := byte(1 << (slot % 8))
	if mem[byteIdx]&mask == 0 {
		panic(fmt.Sprintf("alloc: double free of block at %d", off))
	}
	mem[byteIdx] &^= mask
	st.used--
	c.al.classUsed[st.class].Add(-1)
	if st.used == 0 {
		// Retire the empty chunk: clear the persisted class so crash
		// recovery sees it as free, and return it to the pool.
		f.PersistUint64(base, magicFree)
		if c.partial[st.class] == ci {
			c.partial[st.class] = -1
		}
		c.al.mu.Lock()
		c.al.chunks[ci] = chunkState{class: -1, owner: -1}
		c.al.mu.Unlock()
		c.al.pushFree(ci)
	}
}

func (c *CoreAlloc) freeHuge(off int64, f *pmem.Flusher) {
	start := c.al.chunkIndex(off - headerReserve)
	c.al.mu.Lock()
	n := c.al.chunks[start].hugeLen
	if n == 0 {
		c.al.mu.Unlock()
		panic(fmt.Sprintf("alloc: freeHuge(%d) is not a huge allocation", off))
	}
	base := c.al.chunkOff(start)
	f.PersistUint64(base, magicFree)
	for j := start; j < start+n; j++ {
		c.al.chunks[j] = chunkState{class: -1, owner: -1}
	}
	c.al.mu.Unlock()
	for j := start; j < start+n; j++ {
		c.al.pushFree(j)
	}
}

// UsedBlocks reports the allocated block count of the chunk containing
// off. Intended for tests.
func (al *Allocator) UsedBlocks(off int64) int {
	al.mu.Lock()
	defer al.mu.Unlock()
	return al.chunks[al.chunkIndex(off)].used
}
